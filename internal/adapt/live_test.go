package adapt

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/engine"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/transport"
)

// liveEnv is a real loopback deployment: device servers behind fault
// proxies, a fleet session, a swappable engine, and the adaptive controller
// bound through a FleetAdapter — the full production wiring, in-process.
type liveEnv struct {
	f      field.Prime
	scheme *coding.Scheme
	enc    *coding.Encoding[uint64]
	a      *matrix.Dense[uint64]
	x      []uint64
	want   []uint64

	proxies  []*fleet.FaultProxy // proxies[j] fronts block j's device
	standbys []*fleet.FaultProxy

	session *fleet.Session[uint64]
	swap    *engine.Swappable[uint64]
	query   *engine.Query[uint64]
	adapter *FleetAdapter[uint64]
	ctrl    *Controller
}

func newLiveEnv(t *testing.T, standbys int) *liveEnv {
	t.Helper()
	env := &liveEnv{}
	rng := rand.New(rand.NewPCG(5, 17))
	const m, l, r = 8, 5, 4
	scheme, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	env.scheme = scheme
	env.a = matrix.New[uint64](m, l)
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			env.a.Set(i, j, env.f.Rand(rng))
		}
	}
	env.enc, err = coding.Encode[uint64](env.f, scheme, env.a, rng)
	if err != nil {
		t.Fatal(err)
	}
	env.x = make([]uint64, l)
	for j := range env.x {
		env.x[j] = env.f.Rand(rng)
	}
	env.want = make([]uint64, m)
	for i := range env.want {
		s := env.f.Zero()
		for j := 0; j < l; j++ {
			s = env.f.Add(s, env.f.Mul(env.a.At(i, j), env.x[j]))
		}
		env.want[i] = s
	}

	newProxied := func() *fleet.FaultProxy {
		srv, err := transport.NewDeviceServer[uint64](env.f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		p, err := fleet.NewFaultProxy(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		return p
	}

	// OnWin routes through an atomic pointer because the controller does not
	// exist yet when the session config is built — the same wiring the scec
	// facade uses.
	var ctrl atomic.Pointer[Controller]
	cfg := fleet.Config{
		Replicas:      make([][]string, scheme.Devices()),
		QueryTimeout:  10 * time.Second,
		RPCTimeout:    2 * time.Second,
		HedgeAfter:    -1,
		ProbeInterval: -1,
		Metrics:       obs.New(),
		OnWin: func(device string, block int, latency time.Duration) {
			if c := ctrl.Load(); c != nil {
				c.ObserveWin(device, block, latency)
			}
		},
	}
	for j := range cfg.Replicas {
		p := newProxied()
		env.proxies = append(env.proxies, p)
		cfg.Replicas[j] = []string{p.Addr()}
	}
	for k := 0; k < standbys; k++ {
		p := newProxied()
		env.standbys = append(env.standbys, p)
		cfg.Standbys = append(cfg.Standbys, p.Addr())
	}

	env.session, err = fleet.Serve[uint64](env.f, env.enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.swap, err = engine.NewSwappable[uint64](engine.WrapSession(env.session, true), env.enc.Code)
	if err != nil {
		t.Fatal(err)
	}
	env.query, err = engine.New(env.f, env.enc, env.swap, engine.Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = env.query.Close() })

	env.adapter, err = NewFleetAdapter(env.f, env.enc, env.session, env.swap, cfg, rand.New(rand.NewPCG(23, 42)))
	if err != nil {
		t.Fatal(err)
	}
	env.ctrl, err = New(Config{
		MinSamples: 3,
		// A wide margin: on a 5-device pool the optimal r genuinely shifts
		// when one device slows, and the test wants the cheap same-r rehost
		// the margin prefers, not a full reshape.
		MinImprovement: 0.10,
		Cooldown:       time.Millisecond, // tests drive Step manually
		Metrics:        obs.New(),
	}, env.adapter)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.ctrl.Stop)
	ctrl.Store(env.ctrl)
	return env
}

func (env *liveEnv) checkAnswer(t *testing.T) {
	t.Helper()
	got, err := env.query.MulVec(env.x)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	for i := range got {
		if got[i] != env.want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], env.want[i])
		}
	}
}

// TestLiveControllerEvictsDelayedDevice runs the whole loop against real
// sockets: a fault proxy delays one device, winning-attempt latencies feed
// the estimator through fleet.Config.OnWin, and a control step migrates the
// block to a standby — with every query before, during, and after correct.
func TestLiveControllerEvictsDelayedDevice(t *testing.T) {
	env := newLiveEnv(t, 2)
	slowAddr := env.proxies[0].Addr()
	env.proxies[0].SetDelay(60 * time.Millisecond)
	env.proxies[0].SetMode(fleet.FaultDelay)

	// Each query's winning attempts feed the estimator; a handful is enough
	// to cross MinSamples on every device.
	for i := 0; i < 6; i++ {
		env.checkAnswer(t)
	}

	d, err := env.ctrl.Step(context.Background(), env.ctrl.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Adopt || d.Reshape {
		t.Fatalf("decision = %+v, want a rehost adoption off the delayed device", d)
	}
	moved := false
	for _, mv := range d.Moves {
		if mv.From == slowAddr {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("moves %v do not evict the delayed device %s", d.Moves, slowAddr)
	}
	for _, b := range env.adapter.Placements() {
		if b.Addr == slowAddr {
			t.Fatalf("delayed device still serves block %d", b.Block)
		}
	}
	replans, adopts, blocks := env.ctrl.Stats()
	if replans != 1 || adopts != 1 || blocks == 0 {
		t.Fatalf("stats = %d/%d/%d", replans, adopts, blocks)
	}
	env.checkAnswer(t)
}

// TestLiveReshapeUnderLoad drives concurrent queries through a full
// drain-and-swap redeployment at a new r: reconstruction, re-encode with
// fresh randomness, a brand-new fleet session — and not one failed or wrong
// query.
func TestLiveReshapeUnderLoad(t *testing.T) {
	env := newLiveEnv(t, 2)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 15; n++ {
				got, err := env.query.MulVec(env.x)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != env.want[i] {
						errs <- errors.New("wrong result during reshape")
						return
					}
				}
			}
		}()
	}

	// New r=3 over m=8 needs ⌈(8+3)/3⌉ = 4 devices: the 3 incumbents plus
	// one standby.
	target := make([]string, 0, 4)
	for _, p := range env.proxies {
		target = append(target, p.Addr())
	}
	target = append(target, env.standbys[0].Addr())
	if err := env.adapter.Reshape(context.Background(), target, 3); err != nil {
		t.Fatalf("Reshape: %v", err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query failed during reshape: %v", err)
	}

	next := env.adapter.Session()
	if next == env.session {
		t.Fatal("reshape did not install a new session")
	}
	if got := next.Code().R(); got != 3 {
		t.Fatalf("new session r = %d, want 3", got)
	}
	if got := len(env.adapter.Placements()); got != 4 {
		t.Fatalf("new placement has %d blocks, want 4", got)
	}
	// The remaining pool device is the new session's standby.
	free := env.adapter.Free()
	if len(free) != 1 || free[0] != env.standbys[1].Addr() {
		t.Fatalf("free pool after reshape = %v, want the unused standby", free)
	}
	env.checkAnswer(t)
}
