package adapt

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/engine"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/matrix"
)

// FleetAdapter binds the controller to a live fleet session and its
// engine.Swappable executor.
//
// Rehosts delegate to the session (push-then-swap, no re-encode: replicas of
// one block are security-equivalent). A reshape is a full redeployment at a
// new r: the confidential matrix is reconstructed from the *initial*
// encoding (A is recoverable from any complete encoding, exactly the user's
// own decode path), re-encoded with fresh randomness under a code of the
// same kind (coding.Reshaped preserves the deployment's scheme — structured
// stays structured, t-collusion keeps its threshold), and served by a
// brand-new fleet session that SwapDrained installs behind a gate — new
// rounds wait, in-flight rounds drain, nothing fails. A reshape whose shape
// admits no t-secure row layout returns an error before any device is
// touched, so the swap degrades to a pause.
//
// When the session replicates blocks, the adapter plans over each block's
// first replica (the provisioning-order leader): the control loop migrates
// the replica the planner accounts for, and the fleet's self-repair
// machinery keeps the remaining replicas healthy independently.
type FleetAdapter[E comparable] struct {
	f        field.Field[E]
	enc0     *coding.Encoding[E] // initial encoding, for reconstruction
	swap     *engine.Swappable[E]
	template fleet.Config // policy reused for reshaped sessions
	pool     []string     // every address the adapter may provision

	dataOnce sync.Once
	data     *matrix.Dense[E] // reconstructed A, built on first reshape
	dataErr  error

	mu  sync.Mutex
	cur *fleet.Session[E]
	rng *rand.Rand
}

// NewFleetAdapter wraps a live session. template is the fleet policy reused
// when a reshape builds a replacement session (its Replicas/Standbys are
// overwritten per plan); rng feeds the fresh randomness of re-encodes.
func NewFleetAdapter[E comparable](f field.Field[E], enc *coding.Encoding[E], s *fleet.Session[E], swap *engine.Swappable[E], template fleet.Config, rng *rand.Rand) (*FleetAdapter[E], error) {
	if enc == nil || s == nil || swap == nil {
		return nil, fmt.Errorf("adapt: fleet adapter needs an encoding, a session, and a swappable executor")
	}
	if rng == nil {
		return nil, fmt.Errorf("adapt: fleet adapter needs a randomness source for re-encodes")
	}
	a := &FleetAdapter[E]{f: f, enc0: enc, swap: swap, template: template, cur: s, rng: rng}
	seen := make(map[string]bool)
	for _, hosts := range s.BlockHosts() {
		for _, addr := range hosts {
			if !seen[addr] {
				seen[addr] = true
				a.pool = append(a.pool, addr)
			}
		}
	}
	for _, addr := range s.StandbyAddrs() {
		if !seen[addr] {
			seen[addr] = true
			a.pool = append(a.pool, addr)
		}
	}
	return a, nil
}

// Session returns the session currently serving queries (it changes across
// reshapes).
func (a *FleetAdapter[E]) Session() *fleet.Session[E] {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// Placements reports each block's leader replica and row count.
func (a *FleetAdapter[E]) Placements() []BlockHost {
	s := a.Session()
	code := s.Code()
	hosts := s.BlockHosts()
	out := make([]BlockHost, 0, len(hosts))
	for j, group := range hosts {
		if len(group) == 0 {
			continue
		}
		out = append(out, BlockHost{Block: j, Addr: group[0], Rows: code.RowsOn(j)})
	}
	return out
}

// Free lists standbys eligible to receive a block right now.
func (a *FleetAdapter[E]) Free() []string { return a.Session().StandbyAddrs() }

// Healthy reports the device's breaker state.
func (a *FleetAdapter[E]) Healthy(addr string) bool { return a.Session().DeviceHealthy(addr) }

// RTT reports the device's last transport heartbeat round trip.
func (a *FleetAdapter[E]) RTT(addr string) (time.Duration, bool) { return a.Session().DeviceRTT(addr) }

// Rehost moves one block live; see fleet.Session.Rehost.
func (a *FleetAdapter[E]) Rehost(ctx context.Context, block int, from, to string) error {
	return a.Session().Rehost(ctx, block, from, to)
}

// Reshape redeploys at a new r behind the executor gate. The replacement
// session serves one replica per block at target's addresses; every pool
// device not hosting a block becomes a standby of the new session, so
// self-repair and later rehosts keep working.
func (a *FleetAdapter[E]) Reshape(ctx context.Context, target []string, r int) error {
	a.dataOnce.Do(func() {
		a.data, a.dataErr = coding.Reconstruct(a.f, a.enc0)
	})
	if a.dataErr != nil {
		return fmt.Errorf("adapt: reshape: reconstruct data matrix: %w", a.dataErr)
	}
	code, err := coding.Reshaped(a.f, a.enc0.Code, a.data.Rows(), r, len(target))
	if err != nil {
		return fmt.Errorf("adapt: reshape: %w", err)
	}

	a.mu.Lock()
	enc, err := code.Encode(a.data, a.rng)
	a.mu.Unlock()
	if err != nil {
		return fmt.Errorf("adapt: reshape: re-encode: %w", err)
	}

	cfg := a.template
	cfg.Replicas = make([][]string, len(target))
	used := make(map[string]bool, len(target))
	for j, addr := range target {
		cfg.Replicas[j] = []string{addr}
		used[addr] = true
	}
	cfg.Standbys = nil
	for _, addr := range a.pool {
		if !used[addr] {
			cfg.Standbys = append(cfg.Standbys, addr)
		}
	}

	var next *fleet.Session[E]
	err = a.swap.SwapDrained(ctx, func(ctx context.Context) (engine.Executor[E], coding.Code[E], error) {
		s, err := fleet.Serve(a.f, enc, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("adapt: reshape: provision: %w", err)
		}
		next = s
		return engine.WrapSession(s, true), code, nil
	})
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.cur = next
	a.mu.Unlock()
	return nil
}

var _ Substrate = (*FleetAdapter[uint64])(nil)
