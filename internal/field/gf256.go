package field

import (
	"math/rand/v2"
	"strconv"
)

// gf256Poly is the AES reduction polynomial x^8 + x^4 + x^3 + x + 1.
const gf256Poly = 0x11B

// gf256Tables holds the exp/log tables for GF(2^8) generated from the
// primitive element 3 (0x03), the smallest generator for the AES polynomial.
type gf256Tables struct {
	exp [512]byte // doubled so exp[logA+logB] needs no modular reduction
	log [256]byte
}

// _gf256 is immutable after package initialization; building the 768-byte
// table eagerly is deterministic and free of I/O, which keeps this init
// within the narrow set of acceptable uses.
var _gf256 = buildGF256Tables()

func buildGF256Tables() *gf256Tables {
	t := &gf256Tables{}
	x := 1
	for i := 0; i < 255; i++ {
		t.exp[i] = byte(x)
		t.exp[i+255] = byte(x)
		t.log[byte(x)] = byte(i)
		// multiply x by the generator 0x03 = x + 1 in GF(2^8)
		x = x ^ (x << 1)
		if x&0x100 != 0 {
			x ^= gf256Poly
		}
	}
	return t
}

// GF256 is the field GF(2^8) with the AES reduction polynomial. Elements are
// bytes. Addition is XOR; multiplication uses log/exp tables. The zero value
// is ready to use.
//
// Its 256 elements make exhaustive security arguments tractable: the attack
// harness can enumerate every linear combination a single device could form.
type GF256 struct{}

// Zero returns 0.
func (GF256) Zero() byte { return 0 }

// One returns 1.
func (GF256) One() byte { return 1 }

// Name implements Field.
func (GF256) Name() string { return "GF(256)" }

// FromInt64 embeds v by truncation to its low byte. In characteristic 2 every
// integer reduces to a byte-sized representative; callers that care about the
// exact embedding should pass values in [0, 255].
func (GF256) FromInt64(v int64) byte { return byte(uint64(v) & 0xFF) }

// Add returns a + b (XOR in characteristic 2).
func (GF256) Add(a, b byte) byte { return a ^ b }

// Sub returns a - b, which equals a + b in characteristic 2.
func (GF256) Sub(a, b byte) byte { return a ^ b }

// Neg returns -a == a in characteristic 2.
func (GF256) Neg(a byte) byte { return a }

// Mul returns a * b via the log/exp tables.
func (GF256) Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _gf256.exp[int(_gf256.log[a])+int(_gf256.log[b])]
}

// Inv returns the multiplicative inverse, or ErrDivisionByZero for 0.
func (GF256) Inv(a byte) (byte, error) {
	if a == 0 {
		return 0, ErrDivisionByZero
	}
	return _gf256.exp[255-int(_gf256.log[a])], nil
}

// Div returns a / b, or ErrDivisionByZero when b == 0.
func (f GF256) Div(a, b byte) (byte, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.Mul(a, bi), nil
}

// Equal reports exact equality.
func (GF256) Equal(a, b byte) bool { return a == b }

// IsZero reports whether a == 0.
func (GF256) IsZero(a byte) bool { return a == 0 }

// Rand returns a uniformly random byte.
func (GF256) Rand(rng *rand.Rand) byte { return byte(rng.Uint64N(256)) }

// String renders the element as 0xNN.
func (GF256) String(a byte) string { return "0x" + strconv.FormatUint(uint64(a), 16) }
