package field

import (
	"math/bits"
	"math/rand/v2"
	"strconv"
)

// Modulus is the prime modulus of the Prime field: the Mersenne prime
// 2^61 - 1. A Mersenne modulus admits a branch-light reduction after the
// 128-bit product of two 61-bit residues, which keeps exact coded computing
// within a small constant factor of float64 arithmetic.
const Modulus uint64 = (1 << 61) - 1

// Prime is the prime field F_p with p = Modulus. Elements are canonical
// residues in [0, p). The zero value is ready to use.
type Prime struct{}

// Zero returns 0.
func (Prime) Zero() uint64 { return 0 }

// One returns 1.
func (Prime) One() uint64 { return 1 }

// Name implements Field.
func (Prime) Name() string { return "F_p(2^61-1)" }

// FromInt64 embeds v into F_p, mapping negative integers to p - |v| mod p.
func (Prime) FromInt64(v int64) uint64 {
	m := v % int64(Modulus)
	if m < 0 {
		m += int64(Modulus)
	}
	return uint64(m)
}

// Add returns a + b mod p.
func (Prime) Add(a, b uint64) uint64 {
	s := a + b // a, b < 2^61 so no uint64 overflow
	if s >= Modulus {
		s -= Modulus
	}
	return s
}

// Sub returns a - b mod p.
func (Prime) Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + Modulus - b
}

// Neg returns -a mod p.
func (Prime) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return Modulus - a
}

// Mul returns a * b mod p using the Mersenne reduction
// x mod (2^61-1) == (x >> 61) + (x & (2^61-1)), iterated once.
func (Prime) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// The 122-bit product is hi*2^64 + lo. Split at bit 61:
	// x = top*2^61 + bottom  =>  x ≡ top + bottom (mod 2^61-1).
	top := hi<<3 | lo>>61
	bottom := lo & Modulus
	s := top + bottom // < 2^62, one conditional subtraction may be short; fold again
	s = (s >> 61) + (s & Modulus)
	if s >= Modulus {
		s -= Modulus
	}
	return s
}

// Inv returns a^(p-2) mod p via square-and-multiply (Fermat's little
// theorem), or ErrDivisionByZero when a == 0.
func (f Prime) Inv(a uint64) (uint64, error) {
	if a == 0 {
		return 0, ErrDivisionByZero
	}
	// exponent p-2 = 2^61 - 3
	var (
		result uint64 = 1
		base          = a
		e             = Modulus - 2
	)
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result, nil
}

// Div returns a / b mod p, or ErrDivisionByZero when b == 0.
func (f Prime) Div(a, b uint64) (uint64, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.Mul(a, bi), nil
}

// Equal reports exact equality of canonical residues.
func (Prime) Equal(a, b uint64) bool { return a == b }

// IsZero reports whether a == 0.
func (Prime) IsZero(a uint64) bool { return a == 0 }

// Rand returns a uniformly random residue in [0, p). It draws 61-bit
// candidates and rejects the single value p, which accepts with probability
// 1 - 2^-61 and is roughly twice as fast as rand.Uint64N's multiply-shift
// (encoding draws one residue per random-block element, so this is on the
// pre-processing hot path).
func (Prime) Rand(rng *rand.Rand) uint64 {
	for {
		if v := rng.Uint64() >> 3; v < Modulus {
			return v
		}
	}
}

// String renders the residue in decimal.
func (Prime) String(a uint64) string { return strconv.FormatUint(a, 10) }
