package field

import (
	"testing"
	"testing/quick"
)

// TestFermatLittleTheorem: a^p ≡ a (mod p) for the Mersenne prime — a deep
// consistency check of the exponentiation chain Inv is built on.
func TestFermatLittleTheorem(t *testing.T) {
	f := Prime{}
	pow := func(base, e uint64) uint64 {
		result := uint64(1)
		for e > 0 {
			if e&1 == 1 {
				result = f.Mul(result, base)
			}
			base = f.Mul(base, base)
			e >>= 1
		}
		return result
	}
	check := func(a uint64) bool {
		a %= Modulus
		return pow(a, Modulus) == a
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGF256FrobeniusIsLinear: squaring is additive in characteristic 2 —
// (a+b)² = a² + b² exhaustively.
func TestGF256FrobeniusIsLinear(t *testing.T) {
	f := GF256{}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			ab := f.Add(byte(a), byte(b))
			left := f.Mul(ab, ab)
			right := f.Add(f.Mul(byte(a), byte(a)), f.Mul(byte(b), byte(b)))
			if left != right {
				t.Fatalf("(%d+%d)² != %d² + %d²", a, b, a, b)
			}
		}
	}
}

// TestGF256MultiplicativeOrderDividesGroupOrder: a^255 = 1 for every
// non-zero element (the multiplicative group has order 255).
func TestGF256MultiplicativeOrderDividesGroupOrder(t *testing.T) {
	f := GF256{}
	for a := 1; a < 256; a++ {
		acc := byte(1)
		for i := 0; i < 255; i++ {
			acc = f.Mul(acc, byte(a))
		}
		if acc != 1 {
			t.Fatalf("%d^255 = %d, want 1", a, acc)
		}
	}
}
