package field

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

// axioms exercises the field axioms for an arbitrary Field implementation on
// elements produced by gen. It is shared by the Prime and GF256 tests.
func axioms[E comparable](t *testing.T, f Field[E], gen func() E) {
	t.Helper()
	for trial := 0; trial < 2000; trial++ {
		a, b, c := gen(), gen(), gen()

		if got := f.Add(a, b); !f.Equal(got, f.Add(b, a)) {
			t.Fatalf("%s: Add not commutative: %v vs %v", f.Name(), f.String(got), f.String(f.Add(b, a)))
		}
		if got := f.Mul(a, b); !f.Equal(got, f.Mul(b, a)) {
			t.Fatalf("%s: Mul not commutative", f.Name())
		}
		if got, want := f.Add(f.Add(a, b), c), f.Add(a, f.Add(b, c)); !f.Equal(got, want) {
			t.Fatalf("%s: Add not associative", f.Name())
		}
		if got, want := f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c)); !f.Equal(got, want) {
			t.Fatalf("%s: Mul not associative", f.Name())
		}
		if got, want := f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c)); !f.Equal(got, want) {
			t.Fatalf("%s: Mul does not distribute over Add", f.Name())
		}
		if !f.Equal(f.Add(a, f.Zero()), a) {
			t.Fatalf("%s: Zero is not additive identity", f.Name())
		}
		if !f.Equal(f.Mul(a, f.One()), a) {
			t.Fatalf("%s: One is not multiplicative identity", f.Name())
		}
		if !f.IsZero(f.Add(a, f.Neg(a))) {
			t.Fatalf("%s: a + (-a) != 0 for a=%v", f.Name(), f.String(a))
		}
		if !f.Equal(f.Sub(a, b), f.Add(a, f.Neg(b))) {
			t.Fatalf("%s: Sub(a,b) != a + (-b)", f.Name())
		}
		if !f.IsZero(a) {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("%s: Inv(%v): %v", f.Name(), f.String(a), err)
			}
			if !f.Equal(f.Mul(a, inv), f.One()) {
				t.Fatalf("%s: a * a^-1 != 1 for a=%v", f.Name(), f.String(a))
			}
		}
	}
}

func TestPrimeAxioms(t *testing.T) {
	f := Prime{}
	rng := testRNG()
	axioms[uint64](t, f, func() uint64 { return f.Rand(rng) })
}

func TestGF256Axioms(t *testing.T) {
	f := GF256{}
	rng := testRNG()
	axioms[byte](t, f, func() byte { return f.Rand(rng) })
}

func TestPrimeMulMatchesBigIntSemantics(t *testing.T) {
	f := Prime{}
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 1, 1},
		{Modulus - 1, 1, Modulus - 1},
		{Modulus - 1, Modulus - 1, 1}, // (-1)*(-1) = 1
		{2, Modulus - 1, Modulus - 2}, // 2*(-1) = -2
		{1 << 60, 2, 1},               // 2^61 ≡ 1 (mod 2^61-1)
		{1 << 30, 1 << 31, 1},         // 2^61 ≡ 1 again
		{123456789, 987654321, func() uint64 {
			// schoolbook check below modulus range: product < 2^63 fits uint64 only
			// via careful arithmetic, so precompute: 123456789*987654321 =
			// 121932631112635269, reduce mod 2^61-1.
			const prod = uint64(121932631112635269)
			return prod % Modulus
		}()},
	}
	for _, tc := range cases {
		if got := f.Mul(tc.a, tc.b); got != tc.want {
			t.Errorf("Mul(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPrimeMulAgainstSlowReference(t *testing.T) {
	// Reference implementation via repeated doubling (no 128-bit tricks).
	slowMul := func(a, b uint64) uint64 {
		var acc uint64
		for b > 0 {
			if b&1 == 1 {
				acc += a
				if acc >= Modulus {
					acc -= Modulus
				}
			}
			a += a
			if a >= Modulus {
				a -= Modulus
			}
			b >>= 1
		}
		return acc
	}
	f := Prime{}
	rng := testRNG()
	check := func() bool {
		a, b := f.Rand(rng), f.Rand(rng)
		return f.Mul(a, b) == slowMul(a, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimeInvZero(t *testing.T) {
	f := Prime{}
	if _, err := f.Inv(0); !errors.Is(err, ErrDivisionByZero) {
		t.Fatalf("Inv(0) error = %v, want ErrDivisionByZero", err)
	}
	if _, err := f.Div(1, 0); !errors.Is(err, ErrDivisionByZero) {
		t.Fatalf("Div(1,0) error = %v, want ErrDivisionByZero", err)
	}
}

func TestPrimeFromInt64(t *testing.T) {
	f := Prime{}
	cases := []struct {
		in   int64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{-1, Modulus - 1},
		{int64(Modulus), 0},
		{-int64(Modulus), 0},
		{int64(Modulus) + 5, 5},
		{-7, Modulus - 7},
	}
	for _, tc := range cases {
		if got := f.FromInt64(tc.in); got != tc.want {
			t.Errorf("FromInt64(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestGF256ExhaustiveInverse(t *testing.T) {
	f := GF256{}
	for a := 1; a < 256; a++ {
		inv, err := f.Inv(byte(a))
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if got := f.Mul(byte(a), inv); got != 1 {
			t.Fatalf("%d * Inv(%d) = %d, want 1", a, a, got)
		}
	}
	if _, err := f.Inv(0); !errors.Is(err, ErrDivisionByZero) {
		t.Fatalf("Inv(0) error = %v, want ErrDivisionByZero", err)
	}
}

func TestGF256MulMatchesSchoolbook(t *testing.T) {
	// Carry-less polynomial multiplication followed by reduction mod 0x11B.
	slowMul := func(a, b byte) byte {
		var p uint16
		aa, bb := uint16(a), uint16(b)
		for i := 0; i < 8; i++ {
			if bb&1 == 1 {
				p ^= aa
			}
			bb >>= 1
			aa <<= 1
			if aa&0x100 != 0 {
				aa ^= gf256Poly
			}
		}
		return byte(p)
	}
	f := GF256{}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := f.Mul(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestRealToleranceComparisons(t *testing.T) {
	f := Real{}
	if !f.Equal(1.0, 1.0+1e-12) {
		t.Error("Equal should absorb tiny rounding noise")
	}
	if f.Equal(1.0, 1.0+1e-3) {
		t.Error("Equal should reject genuinely different values")
	}
	if !f.IsZero(1e-12) {
		t.Error("IsZero should treat 1e-12 as zero")
	}
	if f.IsZero(1e-3) {
		t.Error("IsZero should not treat 1e-3 as zero")
	}

	loose := Real{Tol: 0.1}
	if !loose.Equal(1.0, 1.05) {
		t.Error("custom tolerance not honoured")
	}
}

func TestRealDivByZero(t *testing.T) {
	f := Real{}
	if _, err := f.Div(1, 0); !errors.Is(err, ErrDivisionByZero) {
		t.Fatalf("Div(1,0) error = %v, want ErrDivisionByZero", err)
	}
	if _, err := f.Inv(1e-15); !errors.Is(err, ErrDivisionByZero) {
		t.Fatalf("Inv(~0) error = %v, want ErrDivisionByZero", err)
	}
}

func TestRandProducesSpread(t *testing.T) {
	// A crude distribution sanity check: 1000 draws from each field should
	// produce many distinct values.
	rng := testRNG()

	pf := Prime{}
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[pf.Rand(rng)] = true
	}
	if len(seen) < 990 {
		t.Errorf("Prime.Rand produced only %d distinct values in 1000 draws", len(seen))
	}

	gf := GF256{}
	seenB := make(map[byte]bool)
	for i := 0; i < 4096; i++ {
		seenB[gf.Rand(rng)] = true
	}
	if len(seenB) != 256 {
		t.Errorf("GF256.Rand covered %d of 256 values in 4096 draws", len(seenB))
	}
}

func TestNames(t *testing.T) {
	if Prime.Name(Prime{}) == "" || GF256.Name(GF256{}) == "" || Real.Name(Real{}) == "" {
		t.Fatal("field names must be non-empty")
	}
}
