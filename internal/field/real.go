package field

import (
	"math"
	"math/rand/v2"
	"strconv"
)

// DefaultRealTolerance is the absolute comparison tolerance used by the zero
// value of Real. Matrix dimensions in this repository stay below ~10^5, and
// coded entries are O(1), so 1e-9 comfortably separates true zeros from
// float64 rounding noise without masking genuine disagreement.
const DefaultRealTolerance = 1e-9

// Real is float64 arithmetic presented as a Field. It satisfies the field
// axioms only up to rounding, and Equal/IsZero compare with an absolute
// tolerance. The zero value uses DefaultRealTolerance.
//
// Real exists for the machine-learning flavoured workloads (A holds model
// weights); the security-critical paths should prefer Prime, where "uniformly
// random element" is well defined.
type Real struct {
	// Tol is the absolute tolerance for Equal and IsZero. Zero means
	// DefaultRealTolerance.
	Tol float64
}

func (f Real) tol() float64 {
	if f.Tol > 0 {
		return f.Tol
	}
	return DefaultRealTolerance
}

// Zero returns 0.
func (Real) Zero() float64 { return 0 }

// One returns 1.
func (Real) One() float64 { return 1 }

// Name implements Field.
func (Real) Name() string { return "R(float64)" }

// FromInt64 converts v to float64.
func (Real) FromInt64(v int64) float64 { return float64(v) }

// Add returns a + b.
func (Real) Add(a, b float64) float64 { return a + b }

// Sub returns a - b.
func (Real) Sub(a, b float64) float64 { return a - b }

// Neg returns -a.
func (Real) Neg(a float64) float64 { return -a }

// Mul returns a * b.
func (Real) Mul(a, b float64) float64 { return a * b }

// Inv returns 1/a, or ErrDivisionByZero when a is within tolerance of zero.
func (f Real) Inv(a float64) (float64, error) {
	if f.IsZero(a) {
		return 0, ErrDivisionByZero
	}
	return 1 / a, nil
}

// Div returns a / b, or ErrDivisionByZero when b is within tolerance of zero.
func (f Real) Div(a, b float64) (float64, error) {
	if f.IsZero(b) {
		return 0, ErrDivisionByZero
	}
	return a / b, nil
}

// Equal reports |a-b| <= Tol.
func (f Real) Equal(a, b float64) bool { return math.Abs(a-b) <= f.tol() }

// IsZero reports |a| <= Tol.
func (f Real) IsZero(a float64) bool { return math.Abs(a) <= f.tol() }

// Rand returns a standard normal sample. A continuous distribution is the
// closest float64 analogue of "uniformly random field element": any finite
// set of samples is almost surely in general position, which is what the
// coding-theoretic constructions rely on.
func (Real) Rand(rng *rand.Rand) float64 { return rng.NormFloat64() }

// String renders the value with full float64 precision.
func (Real) String(a float64) string { return strconv.FormatFloat(a, 'g', -1, 64) }

// PivotScore ranks Gaussian-elimination pivot candidates by magnitude, which
// makes package matrix use partial pivoting over the reals. Exact fields do
// not implement this; any non-zero pivot works for them.
func (Real) PivotScore(a float64) float64 { return math.Abs(a) }
