package field

import (
	"math/big"
	"math/rand/v2"
	"testing"
)

// kernelLens exercises empty, single-element, and odd lengths, plus lengths
// long enough for the 128-bit accumulator to see many folded products.
var kernelLens = []int{0, 1, 2, 3, 7, 31, 64, 65, 100, 257, 1000}

func primeVec(rng *rand.Rand, n int) []uint64 {
	var f Prime
	v := make([]uint64, n)
	for i := range v {
		v[i] = f.Rand(rng)
	}
	return v
}

// TestPrimeDotVecAgainstBigInt checks the lazy-reduction dot product against
// an exact big.Int evaluation, on uniform vectors and on the adversarial
// all-(p−1) vectors that maximize every intermediate value.
func TestPrimeDotVecAgainstBigInt(t *testing.T) {
	var f Prime
	rng := rand.New(rand.NewPCG(3, 5))
	mod := new(big.Int).SetUint64(Modulus)
	check := func(a, x []uint64) {
		t.Helper()
		want := new(big.Int)
		for i := range a {
			term := new(big.Int).Mul(new(big.Int).SetUint64(a[i]), new(big.Int).SetUint64(x[i]))
			want.Add(want, term)
		}
		want.Mod(want, mod)
		if got := f.DotVec(a, x); got != want.Uint64() {
			t.Fatalf("DotVec(len %d) = %d, want %d", len(a), got, want.Uint64())
		}
	}
	for _, n := range kernelLens {
		check(primeVec(rng, n), primeVec(rng, n))
		worst := make([]uint64, n)
		for i := range worst {
			worst[i] = Modulus - 1
		}
		check(worst, worst)
	}
}

// TestPrimeKernelsMatchScalarOps checks every Prime vector kernel against
// the element-wise field methods: identical canonical outputs.
func TestPrimeKernelsMatchScalarOps(t *testing.T) {
	var f Prime
	rng := rand.New(rand.NewPCG(7, 11))
	for _, n := range kernelLens {
		a, b := primeVec(rng, n), primeVec(rng, n)

		dst := append([]uint64(nil), a...)
		for _, s := range []uint64{0, 1, Modulus - 1, f.Rand(rng)} {
			want := make([]uint64, n)
			for i := range want {
				want[i] = f.Add(dst[i], f.Mul(s, b[i]))
			}
			f.AXPYVec(dst, s, b)
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("AXPYVec(s=%d, len %d)[%d] = %d, want %d", s, n, i, dst[i], want[i])
				}
			}
		}

		sum, diff := make([]uint64, n), make([]uint64, n)
		f.AddVecInto(sum, a, b)
		f.SubVecInto(diff, a, b)
		for i := range a {
			if want := f.Add(a[i], b[i]); sum[i] != want {
				t.Fatalf("AddVecInto[%d] = %d, want %d", i, sum[i], want)
			}
			if want := f.Sub(a[i], b[i]); diff[i] != want {
				t.Fatalf("SubVecInto[%d] = %d, want %d", i, diff[i], want)
			}
		}
	}
}

// TestPrimeReduce128 checks the 128-bit reduction against big.Int over
// boundary values and random pairs.
func TestPrimeReduce128(t *testing.T) {
	var f Prime
	rng := rand.New(rand.NewPCG(13, 17))
	mod := new(big.Int).SetUint64(Modulus)
	cases := [][2]uint64{
		{0, 0}, {0, Modulus}, {0, Modulus - 1}, {0, ^uint64(0)},
		{1, 0}, {^uint64(0), ^uint64(0)}, {1 << 61, 42},
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, [2]uint64{rng.Uint64(), rng.Uint64()})
	}
	for _, c := range cases {
		hi, lo := c[0], c[1]
		want := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		want.Add(want, new(big.Int).SetUint64(lo))
		want.Mod(want, mod)
		if got := f.Reduce128(hi, lo); got != want.Uint64() {
			t.Fatalf("Reduce128(%d, %d) = %d, want %d", hi, lo, got, want.Uint64())
		}
	}
}

// TestFoldMulAdd64 checks the accumulate step keeps congruence: folding a
// product and reducing matches Mul directly.
func TestFoldMulAdd64(t *testing.T) {
	var f Prime
	rng := rand.New(rand.NewPCG(19, 23))
	for i := 0; i < 500; i++ {
		a, b := f.Rand(rng), f.Rand(rng)
		lo, carry := FoldMulAdd64(0, a, b)
		if got, want := f.Reduce128(carry, lo), f.Mul(a, b); got != want {
			t.Fatalf("fold(%d·%d) reduces to %d, want %d", a, b, got, want)
		}
	}
}

// TestGF256MulTableExhaustive checks the full 64 KiB multiplication table
// against the log/exp Mul over every pair of bytes.
func TestGF256MulTableExhaustive(t *testing.T) {
	var f GF256
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := gf256Mul[a][b], f.Mul(byte(a), byte(b)); got != want {
				t.Fatalf("gf256Mul[%#x][%#x] = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

// TestGF256KernelsMatchScalarOps checks the GF(256) vector kernels against
// the element-wise methods.
func TestGF256KernelsMatchScalarOps(t *testing.T) {
	var f GF256
	rng := rand.New(rand.NewPCG(29, 31))
	for _, n := range kernelLens {
		a, b := make([]byte, n), make([]byte, n)
		for i := range a {
			a[i], b[i] = f.Rand(rng), f.Rand(rng)
		}
		var dot byte
		for i := range a {
			dot = f.Add(dot, f.Mul(a[i], b[i]))
		}
		if got := f.DotVec(a, b); got != dot {
			t.Fatalf("DotVec(len %d) = %#x, want %#x", n, got, dot)
		}

		for _, s := range []byte{0, 1, 0x53, f.Rand(rng)} {
			dst := append([]byte(nil), a...)
			want := make([]byte, n)
			for i := range want {
				want[i] = f.Add(a[i], f.Mul(s, b[i]))
			}
			f.AXPYVec(dst, s, b)
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("AXPYVec(s=%#x)[%d] = %#x, want %#x", s, i, dst[i], want[i])
				}
			}
		}

		sum := make([]byte, n)
		f.AddVecInto(sum, a, b)
		for i := range a {
			if want := a[i] ^ b[i]; sum[i] != want {
				t.Fatalf("AddVecInto[%d] = %#x, want %#x", i, sum[i], want)
			}
		}
	}
}

// TestRealKernelsBitIdentical checks the float64 kernels reproduce the
// generic Add/Mul sequences bit for bit (same order, no FMA contraction).
func TestRealKernelsBitIdentical(t *testing.T) {
	var f Real
	rng := rand.New(rand.NewPCG(37, 41))
	for _, n := range kernelLens {
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i], b[i] = f.Rand(rng), f.Rand(rng)
		}
		var dot float64
		for i := range a {
			dot = f.Add(dot, f.Mul(a[i], b[i]))
		}
		if got := f.DotVec(a, b); got != dot {
			t.Fatalf("DotVec(len %d) = %v, want %v (bitwise)", n, got, dot)
		}

		s := f.Rand(rng)
		dst := append([]float64(nil), a...)
		want := make([]float64, n)
		for i := range want {
			want[i] = f.Add(a[i], f.Mul(s, b[i]))
		}
		f.AXPYVec(dst, s, b)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("AXPYVec[%d] = %v, want %v (bitwise)", i, dst[i], want[i])
			}
		}

		sum, diff := make([]float64, n), make([]float64, n)
		f.AddVecInto(sum, a, b)
		f.SubVecInto(diff, a, b)
		for i := range a {
			if sum[i] != a[i]+b[i] || diff[i] != a[i]-b[i] {
				t.Fatalf("Add/SubVecInto[%d] mismatch", i)
			}
		}
	}
}
