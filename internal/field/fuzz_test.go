package field

import "testing"

// FuzzPrimeArithmetic cross-checks the Mersenne-reduction multiplication
// against a shift-and-add reference and exercises the ring axioms on
// arbitrary residues.
func FuzzPrimeArithmetic(fz *testing.F) {
	fz.Add(uint64(0), uint64(0))
	fz.Add(uint64(1), Modulus-1)
	fz.Add(Modulus-1, Modulus-1)
	fz.Add(uint64(1)<<60, uint64(2))
	fz.Add(uint64(123456789), uint64(987654321))
	fz.Fuzz(func(t *testing.T, a, b uint64) {
		f := Prime{}
		a %= Modulus
		b %= Modulus

		slowMul := func(x, y uint64) uint64 {
			var acc uint64
			for y > 0 {
				if y&1 == 1 {
					acc += x
					if acc >= Modulus {
						acc -= Modulus
					}
				}
				x += x
				if x >= Modulus {
					x -= Modulus
				}
				y >>= 1
			}
			return acc
		}
		if got, want := f.Mul(a, b), slowMul(a, b); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
		if f.Add(a, b) != f.Add(b, a) {
			t.Fatal("Add not commutative")
		}
		if f.Sub(f.Add(a, b), b) != a {
			t.Fatal("(a+b)-b != a")
		}
		if f.Add(a, f.Neg(a)) != 0 {
			t.Fatal("a + (-a) != 0")
		}
		if a != 0 {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("Inv(%d): %v", a, err)
			}
			if f.Mul(a, inv) != 1 {
				t.Fatalf("a·a⁻¹ != 1 for a=%d", a)
			}
		}
	})
}

// FuzzGF256Arithmetic exercises the byte field's table-based operations on
// arbitrary pairs.
func FuzzGF256Arithmetic(fz *testing.F) {
	fz.Add(byte(0), byte(0))
	fz.Add(byte(1), byte(255))
	fz.Add(byte(0x53), byte(0xCA))
	fz.Fuzz(func(t *testing.T, a, b byte) {
		f := GF256{}
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatal("Mul not commutative")
		}
		if f.Add(a, b) != a^b {
			t.Fatal("Add must be XOR")
		}
		if a != 0 {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("Inv(%d): %v", a, err)
			}
			if f.Mul(a, inv) != 1 {
				t.Fatalf("a·a⁻¹ != 1 for a=%d", a)
			}
			// Division must invert multiplication.
			q, err := f.Div(f.Mul(a, b), a)
			if err != nil {
				t.Fatal(err)
			}
			if q != b {
				t.Fatalf("(a·b)/a = %d, want %d", q, b)
			}
		}
	})
}
