package field

import "math/bits"

// Vector kernels: monomorphized inner loops for the three concrete fields.
//
// The generic matrix code pays one dynamic dispatch per element; for the hot
// paths (dot product, AXPY, element-wise add/sub) that cost dominates the
// arithmetic. Each concrete field therefore exposes slice kernels that
// package matrix selects by type switch. The kernels are semantically exact:
// over Prime and GF256 they produce the identical canonical representatives
// the element-wise methods produce, and over Real they perform the identical
// float64 operations in the identical order (no fused multiply-add, no
// reassociation), so every kernel path is bit-compatible with the generic
// one.

// reduce128 reduces the 128-bit value hi·2^64 + lo modulo 2^61 − 1 to the
// canonical representative in [0, p). Because 2^61 ≡ 1 (mod p), the value
// splits into three 61-bit limbs whose sum is congruent to it.
func reduce128(hi, lo uint64) uint64 {
	s := (lo & Modulus) + ((hi<<3 | lo>>61) & Modulus) + hi>>58
	s = s>>61 + s&Modulus
	if s >= Modulus {
		s -= Modulus
	}
	return s
}

// foldMul64 returns a value < 2^62 congruent to a·b (mod 2^61 − 1) for
// canonical a, b: the 122-bit product folded once at bit 61. This is the
// "lazy" half of Prime.Mul — no conditional subtractions, not canonical.
func foldMul64(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return (hi<<3 | lo>>61) + lo&Modulus
}

// Reduce128 reduces the 128-bit value hi·2^64 + lo to its canonical
// representative mod 2^61 − 1. Callers accumulate folded products with
// FoldMulAdd64 and reduce once per row.
func (Prime) Reduce128(hi, lo uint64) uint64 { return reduce128(hi, lo) }

// FoldMulAdd64 adds the once-folded product of canonical residues a and b
// (a value < 2^62 congruent to a·b mod 2^61 − 1) to acc, returning the low
// word and the carry into the high word of a 128-bit accumulator. It is the
// building block of the lazy-reduction matrix kernels in package matrix.
func FoldMulAdd64(acc, a, b uint64) (lo, carry uint64) {
	return bits.Add64(acc, foldMul64(a, b), 0)
}

// DotVec returns Σ a[i]·x[i] mod p over min(len(a), len(x)) elements. Each
// product is folded to 62 bits and accumulated into a 128-bit sum, so the
// loop performs no modular reduction at all; one reduce128 runs per call
// ("one reduction per row"). The accumulator cannot overflow for any slice
// length addressable in Go (it would take 2^66 terms).
func (Prime) DotVec(a, x []uint64) uint64 {
	if len(x) < len(a) {
		a = a[:len(x)]
	}
	x = x[:len(a)]
	var hi, lo, carry uint64
	for i, av := range a {
		lo, carry = bits.Add64(lo, foldMul64(av, x[i]), 0)
		hi += carry
	}
	return reduce128(hi, lo)
}

// AXPYVec performs dst[i] = dst[i] + s·src[i] mod p over min(len(dst),
// len(src)) elements, the row update of the i-k-j matrix product. Each
// element needs one fold and one conditional subtraction — cheaper than
// Mul followed by Add, and the result stays canonical so the next AXPY pass
// can build on it.
func (Prime) AXPYVec(dst []uint64, s uint64, src []uint64) {
	if s == 0 {
		return
	}
	if len(src) < len(dst) {
		dst = dst[:len(src)]
	}
	src = src[:len(dst)]
	for i, sv := range src {
		t := foldMul64(s, sv) + dst[i] // < 2^62 + 2^61 < 2^63
		t = t>>61 + t&Modulus          // ≤ p + 3
		if t >= Modulus {
			t -= Modulus
		}
		dst[i] = t
	}
}

// AddVecInto sets dst[i] = a[i] + b[i] mod p. All three slices must share a
// length (enforced by truncation to the shortest; package matrix always
// passes equal lengths).
func (Prime) AddVecInto(dst, a, b []uint64) {
	n := min(len(dst), len(a), len(b))
	dst, a, b = dst[:n], a[:n], b[:n]
	for i, av := range a {
		s := av + b[i]
		if s >= Modulus {
			s -= Modulus
		}
		dst[i] = s
	}
}

// SubVecInto sets dst[i] = a[i] − b[i] mod p.
func (Prime) SubVecInto(dst, a, b []uint64) {
	n := min(len(dst), len(a), len(b))
	dst, a, b = dst[:n], a[:n], b[:n]
	for i, av := range a {
		bv := b[i]
		if av >= bv {
			dst[i] = av - bv
		} else {
			dst[i] = av + Modulus - bv
		}
	}
}

// gf256Mul is the full 64 KiB multiplication table for GF(2^8), built once
// at startup from the exp/log tables. Row s is the multiplication-by-s map,
// which turns the AXPY inner loop into one table lookup and one XOR per
// element with no zero-checks.
var gf256Mul = buildGF256MulTable()

func buildGF256MulTable() *[256][256]byte {
	t := &[256][256]byte{}
	var f GF256
	for a := 1; a < 256; a++ {
		for b := a; b < 256; b++ {
			p := f.Mul(byte(a), byte(b))
			t[a][b] = p
			t[b][a] = p
		}
	}
	return t
}

// DotVec returns Σ a[i]·x[i] over GF(2^8) (sum = XOR).
func (GF256) DotVec(a, x []byte) byte {
	if len(x) < len(a) {
		a = a[:len(x)]
	}
	x = x[:len(a)]
	var acc byte
	for i, av := range a {
		acc ^= gf256Mul[av][x[i]]
	}
	return acc
}

// AXPYVec performs dst[i] ^= s·src[i] over GF(2^8) using the s-row of the
// multiplication table.
func (GF256) AXPYVec(dst []byte, s byte, src []byte) {
	if s == 0 {
		return
	}
	if len(src) < len(dst) {
		dst = dst[:len(src)]
	}
	src = src[:len(dst)]
	row := &gf256Mul[s]
	for i, sv := range src {
		dst[i] ^= row[sv]
	}
}

// AddVecInto sets dst[i] = a[i] + b[i] = a[i] XOR b[i]. Subtraction is the
// same operation in characteristic 2, so no SubVecInto exists.
func (GF256) AddVecInto(dst, a, b []byte) {
	n := min(len(dst), len(a), len(b))
	dst, a, b = dst[:n], a[:n], b[:n]
	for i, av := range a {
		dst[i] = av ^ b[i]
	}
}

// DotVec returns Σ a[i]·x[i] over float64, accumulating left to right with
// each product explicitly rounded to float64 (the conversion forbids the
// compiler from fusing into FMA), so the result is bit-identical to the
// generic Add/Mul sequence on every architecture.
func (Real) DotVec(a, x []float64) float64 {
	if len(x) < len(a) {
		a = a[:len(x)]
	}
	x = x[:len(a)]
	var acc float64
	for i, av := range a {
		acc += float64(av * x[i])
	}
	return acc
}

// AXPYVec performs dst[i] += s·src[i] over float64, with the product
// explicitly rounded (no FMA) to stay bit-identical to the generic path.
func (Real) AXPYVec(dst []float64, s float64, src []float64) {
	if len(src) < len(dst) {
		dst = dst[:len(src)]
	}
	src = src[:len(dst)]
	for i, sv := range src {
		dst[i] += float64(s * sv)
	}
}

// AddVecInto sets dst[i] = a[i] + b[i].
func (Real) AddVecInto(dst, a, b []float64) {
	n := min(len(dst), len(a), len(b))
	dst, a, b = dst[:n], a[:n], b[:n]
	for i, av := range a {
		dst[i] = av + b[i]
	}
}

// SubVecInto sets dst[i] = a[i] − b[i].
func (Real) SubVecInto(dst, a, b []float64) {
	n := min(len(dst), len(a), len(b))
	dst, a, b = dst[:n], a[:n], b[:n]
	for i, av := range a {
		dst[i] = av - b[i]
	}
}
