// Package field provides the algebraic substrate for secure coded edge
// computing: a small generic Field abstraction together with three concrete
// implementations.
//
//   - Prime: the prime field F_p with p = 2^61 - 1. This is the default field
//     for the security-critical code paths, because information-theoretic
//     security requires uniformly random field elements and exact linear
//     algebra.
//   - GF256: the byte field GF(2^8) with the AES reduction polynomial, handy
//     for compact encodings and for exhaustive security checks over a small
//     field.
//   - Real: float64 arithmetic with tolerance-based comparison, used by the
//     machine-learning flavoured examples where A holds model weights.
//
// The abstraction is deliberately value-based (elements are plain comparable
// values, operations live on the field object) so that dense linear algebra
// in package matrix stays allocation-free in its inner loops.
package field

import (
	"errors"
	"math/rand/v2"
)

// ErrDivisionByZero is returned by Inv and Div when the divisor is zero.
var ErrDivisionByZero = errors.New("field: division by zero")

// Field defines arithmetic over a field with element type E.
//
// Implementations must satisfy the field axioms with respect to Equal: Add
// and Mul are commutative and associative, Mul distributes over Add, Zero and
// One are the respective identities, Neg yields additive inverses, and Inv
// yields multiplicative inverses for every non-zero element.
//
// The Real field is the one permitted deviation: it satisfies the axioms only
// approximately, and Equal/IsZero use an absolute tolerance.
type Field[E comparable] interface {
	// Zero returns the additive identity.
	Zero() E
	// One returns the multiplicative identity.
	One() E
	// FromInt64 embeds an integer into the field.
	FromInt64(v int64) E
	// Add returns a + b.
	Add(a, b E) E
	// Sub returns a - b.
	Sub(a, b E) E
	// Neg returns -a.
	Neg(a E) E
	// Mul returns a * b.
	Mul(a, b E) E
	// Inv returns the multiplicative inverse of a, or ErrDivisionByZero if a
	// is zero.
	Inv(a E) (E, error)
	// Div returns a / b, or ErrDivisionByZero if b is zero.
	Div(a, b E) (E, error)
	// Equal reports whether a and b represent the same field element. For
	// exact fields this is ==; for Real it uses a tolerance.
	Equal(a, b E) bool
	// IsZero reports whether a is (approximately, for Real) zero.
	IsZero(a E) bool
	// Rand returns an element drawn uniformly at random from the field. For
	// Real it draws from a continuous distribution instead; see Real.Rand.
	Rand(rng *rand.Rand) E
	// String renders the element for diagnostics.
	String(a E) string
	// Name identifies the field in logs and error messages.
	Name() string
}

// compile-time interface compliance checks.
var (
	_ Field[uint64]  = Prime{}
	_ Field[byte]    = GF256{}
	_ Field[float64] = Real{}
)
