package matrix

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Row-blocked parallelism for the dense kernels.
//
// A single package-level bounded worker pool shards large operations across
// cores; small operations never touch it and stay on the fast serial path.
// The pool is sized to runtime.GOMAXPROCS(0) at first use and spawns no
// goroutines per call. Submission is non-blocking: a shard that cannot be
// queued runs inline on the submitting goroutine, which makes nested
// parallel operations (a parallel ComputeAll whose per-device MulVec is
// itself above the threshold) deadlock-free by construction.

// DefaultParallelThreshold is the element-operation count below which an
// operation stays serial. At roughly a nanosecond per element operation the
// threshold corresponds to tens of microseconds of serial work, the scale at
// which sharding overhead starts to pay for itself.
const DefaultParallelThreshold = 32 * 1024

var (
	parallelEnabled    atomic.Bool
	specializedEnabled atomic.Bool
	parallelThreshold  atomic.Int64

	poolOnce  sync.Once
	poolSize  atomic.Int64 // set once by startPool
	poolTasks chan func()
)

func init() {
	parallelEnabled.Store(true)
	specializedEnabled.Store(true)
	parallelThreshold.Store(DefaultParallelThreshold)
}

// SetParallelKernels enables or disables the parallel execution paths and
// returns the previous setting. Benchmarks and differential tests use it to
// pin a configuration; production code leaves it on.
func SetParallelKernels(on bool) (prev bool) { return parallelEnabled.Swap(on) }

// SetSpecializedKernels enables or disables the field-specialized kernels
// and returns the previous setting. With specialization off every operation
// runs the generic per-element loops, which is the reference behaviour the
// differential tests compare against.
func SetSpecializedKernels(on bool) (prev bool) { return specializedEnabled.Swap(on) }

// SetParallelThreshold sets the element-operation count at or above which
// Mul, MulVec, Add, Sub, and ParallelFor shard work across the pool, and
// returns the previous threshold. Values below 1 are clamped to 1 (always
// shard when the parallel paths are enabled and there are at least two
// items).
func SetParallelThreshold(ops int) (prev int) {
	if ops < 1 {
		ops = 1
	}
	return int(parallelThreshold.Swap(int64(ops)))
}

// PoolSize returns the number of workers the shared kernel pool runs (the
// GOMAXPROCS value observed when the pool started, or the current value if
// it has not started yet).
func PoolSize() int {
	if n := poolSize.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// startPool spins up the workers on first parallel use.
func startPool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		poolTasks = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for fn := range poolTasks {
					fn()
				}
			}()
		}
		poolSize.Store(int64(n))
		setPoolGauge(n)
	})
}

// trySubmit queues fn on the pool without blocking; the caller runs fn
// inline when the queue is full. Workers therefore never wait on other
// shards, so saturated or nested use degrades to serial execution instead
// of deadlocking.
func trySubmit(fn func()) bool {
	select {
	case poolTasks <- fn:
		return true
	default:
		return false
	}
}

// parallelFor runs fn over the half-open index ranges that partition
// [0, n), sharding across the pool when the parallel paths are on, work
// (an element-operation estimate for the whole call) meets the threshold,
// and there is more than one item and one worker. It reports whether the
// call actually sharded; either way every index has been processed when it
// returns.
func parallelFor(n int, work int, fn func(lo, hi int)) (sharded bool) {
	if n <= 0 {
		return false
	}
	if n == 1 || !parallelEnabled.Load() || int64(work) < parallelThreshold.Load() {
		fn(0, n)
		return false
	}
	startPool()
	shards := int(poolSize.Load())
	if shards > n {
		shards = n
	}
	if shards < 2 {
		fn(0, n)
		return false
	}
	chunk := (n + shards - 1) / shards
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		if !trySubmit(task) {
			task()
		}
	}
	wg.Wait()
	return true
}

// ParallelFor shards fn across the package's bounded worker pool: fn is
// called with disjoint half-open ranges covering [0, n), concurrently when
// n and the work estimate (total element operations for the call) clear the
// parallel threshold, serially otherwise. fn must be safe to run
// concurrently on disjoint ranges. Sibling packages (coding) use it to
// parallelize across devices with the same pool, threshold, and tuning
// knobs as the in-package kernels.
func ParallelFor(n int, work int, fn func(lo, hi int)) {
	parallelFor(n, work, fn)
}
