package matrix

import (
	"testing"

	"github.com/scec/scec/internal/field"
)

func TestNullSpaceFullRankIsEmpty(t *testing.T) {
	f := field.Prime{}
	ns := NullSpace[uint64](f, Identity[uint64](f, 4))
	if ns.Rows() != 0 || ns.Cols() != 4 {
		t.Fatalf("null space of identity = %dx%d, want 0x4", ns.Rows(), ns.Cols())
	}
}

func TestNullSpaceDimensionTheorem(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.IntN(6)
		cols := 1 + rng.IntN(8)
		a := Random[uint64](f, rng, rows, cols)
		// Plant dependencies: duplicate some columns to force rank deficits.
		if cols >= 2 {
			for i := 0; i < rows; i++ {
				a.Set(i, cols-1, a.At(i, 0))
			}
		}
		rank := Rank[uint64](f, a)
		ns := NullSpace[uint64](f, a)
		if ns.Rows() != cols-rank {
			t.Fatalf("nullity = %d, want cols-rank = %d", ns.Rows(), cols-rank)
		}
		// Every basis vector must be annihilated by a.
		for b := 0; b < ns.Rows(); b++ {
			x := ns.Row(b)
			ax := MulVec[uint64](f, a, x)
			for _, v := range ax {
				if v != 0 {
					t.Fatalf("A·(null basis row %d) != 0", b)
				}
			}
		}
		// The basis itself must be independent.
		if ns.Rows() > 0 && Rank[uint64](f, ns) != ns.Rows() {
			t.Fatal("null-space basis rows are dependent")
		}
	}
}

func TestNullSpaceKnownExample(t *testing.T) {
	f := field.Real{}
	// x + y = 0 over two unknowns: null space spanned by (1, -1).
	a := FromRows([][]float64{{1, 1}})
	ns := NullSpace[float64](f, a)
	if ns.Rows() != 1 {
		t.Fatalf("nullity = %d, want 1", ns.Rows())
	}
	v := ns.Row(0)
	if !f.IsZero(v[0] + v[1]) {
		t.Fatalf("basis %v not in null space", v)
	}
}

func TestNullSpaceEmptyMatrix(t *testing.T) {
	f := field.Prime{}
	ns := NullSpace[uint64](f, New[uint64](0, 3))
	if ns.Rows() != 0 || ns.Cols() != 3 {
		t.Fatalf("null space of empty = %dx%d, want 0x3", ns.Rows(), ns.Cols())
	}
	// Zero matrix: the whole domain.
	ns = NullSpace[uint64](f, New[uint64](2, 3))
	if ns.Rows() != 3 {
		t.Fatalf("nullity of zero matrix = %d, want 3", ns.Rows())
	}
}
