package matrix

import (
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/field"
)

// Substrate benchmarks: the dense kernels every other package sits on,
// across the three fields (the repro note flags Go's linear-algebra gap —
// these pin what our from-scratch kernels deliver).

const (
	benchN = 128 // square dimension for Mul/Rank/LU
	benchL = 512 // row length for MulVec
)

func benchRNG() *rand.Rand { return rand.New(rand.NewPCG(99, 101)) }

func BenchmarkMulPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	x := Random[uint64](f, rng, benchN, benchN)
	y := Random[uint64](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul[uint64](f, x, y)
	}
}

func BenchmarkMulReal(b *testing.B) {
	f := field.Real{}
	rng := benchRNG()
	x := Random[float64](f, rng, benchN, benchN)
	y := Random[float64](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul[float64](f, x, y)
	}
}

func BenchmarkMulGF256(b *testing.B) {
	f := field.GF256{}
	rng := benchRNG()
	x := Random[byte](f, rng, benchN, benchN)
	y := Random[byte](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul[byte](f, x, y)
	}
}

func BenchmarkMulVecPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchL)
	x := RandomVec[uint64](f, rng, benchL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulVec[uint64](f, a, x)
	}
}

func BenchmarkRankPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Rank[uint64](f, a)
	}
}

func BenchmarkLUFactorPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor[uint64](f, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUSolvePrime measures the per-solve cost after factoring —
// compare with BenchmarkSolvePrime (fresh elimination per solve).
func BenchmarkLUSolvePrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchN)
	lu, err := Factor[uint64](f, a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := RandomVec[uint64](f, rng, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lu.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolvePrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchN)
	rhs := RandomVec[uint64](f, rng, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve[uint64](f, a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
