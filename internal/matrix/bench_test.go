package matrix

import (
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/field"
)

// Substrate benchmarks: the dense kernels every other package sits on,
// across the three fields (the repro note flags Go's linear-algebra gap —
// these pin what our from-scratch kernels deliver).

const (
	benchN = 128 // square dimension for Mul/Rank/LU
	benchL = 512 // row length for MulVec
)

func benchRNG() *rand.Rand { return rand.New(rand.NewPCG(99, 101)) }

// withKernelConfig pins the dispatch knobs for one sub-benchmark and
// restores them afterwards.
func withKernelConfig(b *testing.B, spec, par bool, fn func(b *testing.B)) {
	prevSpec := SetSpecializedKernels(spec)
	prevPar := SetParallelKernels(par)
	defer func() {
		SetSpecializedKernels(prevSpec)
		SetParallelKernels(prevPar)
	}()
	fn(b)
}

// kernelVariants runs fn under the four dispatch configurations so
// generic-vs-specialized and serial-vs-parallel are directly comparable in
// one `go test -bench` run.
func kernelVariants(b *testing.B, fn func(b *testing.B)) {
	for _, v := range []struct {
		name      string
		spec, par bool
	}{
		{"generic-serial", false, false},
		{"specialized-serial", true, false},
		{"generic-parallel", false, true},
		{"specialized-parallel", true, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			withKernelConfig(b, v.spec, v.par, func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				fn(b)
			})
		})
	}
}

// BenchmarkMulVariantsPrime compares the dense product across every
// dispatch configuration at a parallel-eligible size.
func BenchmarkMulVariantsPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	x := Random[uint64](f, rng, benchN, benchN)
	y := Random[uint64](f, rng, benchN, benchN)
	kernelVariants(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Mul[uint64](f, x, y)
		}
	})
}

// BenchmarkMulVariantsGF256 is the GF(256) table-kernel comparison.
func BenchmarkMulVariantsGF256(b *testing.B) {
	f := field.GF256{}
	rng := benchRNG()
	x := Random[byte](f, rng, benchN, benchN)
	y := Random[byte](f, rng, benchN, benchN)
	kernelVariants(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Mul[byte](f, x, y)
		}
	})
}

// BenchmarkMulVariantsReal is the float64 comparison.
func BenchmarkMulVariantsReal(b *testing.B) {
	f := field.Real{}
	rng := benchRNG()
	x := Random[float64](f, rng, benchN, benchN)
	y := Random[float64](f, rng, benchN, benchN)
	kernelVariants(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Mul[float64](f, x, y)
		}
	})
}

// BenchmarkMulVecVariantsPrime compares the matrix–vector hot path (the
// per-device compute kernel) across dispatch configurations.
func BenchmarkMulVecVariantsPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, 1024, benchL)
	x := RandomVec[uint64](f, rng, benchL)
	kernelVariants(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = MulVec[uint64](f, a, x)
		}
	})
}

// BenchmarkAddVariantsPrime compares the element-wise kernels (the encode
// inner loop) across dispatch configurations.
func BenchmarkAddVariantsPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	x := Random[uint64](f, rng, 1024, benchL)
	y := Random[uint64](f, rng, 1024, benchL)
	kernelVariants(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Add[uint64](f, x, y)
		}
	})
}

func BenchmarkMulPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	x := Random[uint64](f, rng, benchN, benchN)
	y := Random[uint64](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul[uint64](f, x, y)
	}
}

func BenchmarkMulReal(b *testing.B) {
	f := field.Real{}
	rng := benchRNG()
	x := Random[float64](f, rng, benchN, benchN)
	y := Random[float64](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul[float64](f, x, y)
	}
}

func BenchmarkMulGF256(b *testing.B) {
	f := field.GF256{}
	rng := benchRNG()
	x := Random[byte](f, rng, benchN, benchN)
	y := Random[byte](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul[byte](f, x, y)
	}
}

func BenchmarkMulVecPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchL)
	x := RandomVec[uint64](f, rng, benchL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulVec[uint64](f, a, x)
	}
}

func BenchmarkRankPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Rank[uint64](f, a)
	}
}

func BenchmarkLUFactorPrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor[uint64](f, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUSolvePrime measures the per-solve cost after factoring —
// compare with BenchmarkSolvePrime (fresh elimination per solve).
func BenchmarkLUSolvePrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchN)
	lu, err := Factor[uint64](f, a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := RandomVec[uint64](f, rng, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lu.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolvePrime(b *testing.B) {
	f := field.Prime{}
	rng := benchRNG()
	a := Random[uint64](f, rng, benchN, benchN)
	rhs := RandomVec[uint64](f, rng, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve[uint64](f, a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
