package matrix

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/scec/scec/internal/field"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(7, 11)) }

func TestNewAndAccessors(t *testing.T) {
	m := New[uint64](2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 42)
	if got := m.At(1, 2); got != 42 {
		t.Fatalf("At(1,2) = %d, want 42", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %d, want 0", got)
	}
}

func TestNewPanicsOnNegativeDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	New[uint64](-1, 2)
}

func TestBoundsPanics(t *testing.T) {
	m := New[uint64](2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(5) },
		func() { m.SetRow(0, []uint64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected bounds panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromRowsAndRowCopySemantics(t *testing.T) {
	src := [][]uint64{{1, 2}, {3, 4}}
	m := FromRows(src)
	src[0][0] = 99 // must not alias
	if m.At(0, 0) != 1 {
		t.Fatal("FromRows must copy its input")
	}
	r := m.Row(1)
	r[0] = 99 // must not alias
	if m.At(1, 0) != 3 {
		t.Fatal("Row must return a copy")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]uint64{{1, 2}, {3}})
}

func TestIdentityMulIsIdentityPrime(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	a := Random[uint64](f, rng, 6, 6)
	i6 := Identity[uint64](f, 6)
	if !Equal[uint64](f, Mul[uint64](f, a, i6), a) {
		t.Fatal("A·I != A")
	}
	if !Equal[uint64](f, Mul[uint64](f, i6, a), a) {
		t.Fatal("I·A != A")
	}
}

func TestMulKnownValues(t *testing.T) {
	f := field.Real{}
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul[float64](f, a, b); !Equal[float64](f, got, want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulAssociativity(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	for trial := 0; trial < 20; trial++ {
		a := Random[uint64](f, rng, 4, 5)
		b := Random[uint64](f, rng, 5, 3)
		c := Random[uint64](f, rng, 3, 6)
		left := Mul[uint64](f, Mul[uint64](f, a, b), c)
		right := Mul[uint64](f, a, Mul[uint64](f, b, c))
		if !Equal[uint64](f, left, right) {
			t.Fatal("(AB)C != A(BC)")
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	a := Random[uint64](f, rng, 7, 5)
	x := RandomVec[uint64](f, rng, 5)
	xm := New[uint64](5, 1)
	for i, v := range x {
		xm.Set(i, 0, v)
	}
	prod := Mul[uint64](f, a, xm)
	got := MulVec[uint64](f, a, x)
	for i := range got {
		if got[i] != prod.At(i, 0) {
			t.Fatalf("MulVec[%d] = %d, want %d", i, got[i], prod.At(i, 0))
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	f := field.Prime{}
	Mul[uint64](f, New[uint64](2, 3), New[uint64](2, 3))
}

func TestAddSubScale(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	a := Random[uint64](f, rng, 3, 4)
	b := Random[uint64](f, rng, 3, 4)
	if !Equal[uint64](f, Sub[uint64](f, Add[uint64](f, a, b), b), a) {
		t.Fatal("(A+B)-B != A")
	}
	two := f.FromInt64(2)
	if !Equal[uint64](f, Scale[uint64](f, two, a), Add[uint64](f, a, a)) {
		t.Fatal("2A != A+A")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := field.GF256{}
	rng := testRNG()
	a := Random[byte](f, rng, 4, 7)
	if !Equal[byte](f, Transpose(Transpose(a)), a) {
		t.Fatal("transpose is not an involution")
	}
	if got := Transpose(a); got.Rows() != 7 || got.Cols() != 4 {
		t.Fatalf("transpose shape = %dx%d, want 7x4", got.Rows(), got.Cols())
	}
}

func TestVStackHStack(t *testing.T) {
	f := field.Real{}
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	v := VStack(a, b)
	if v.Rows() != 3 || v.Cols() != 2 || v.At(2, 1) != 6 {
		t.Fatalf("VStack wrong: %v", v)
	}
	h := HStack(Transpose(a), Transpose(b))
	if h.Rows() != 2 || h.Cols() != 3 || h.At(1, 2) != 6 {
		t.Fatalf("HStack wrong: %v", h)
	}
	// Empty blocks are skipped.
	if got := VStack(New[float64](0, 0), b); !Equal[float64](f, got, b) {
		t.Fatal("VStack should skip empty blocks")
	}
	if got := VStack[float64](); got.Rows() != 0 || got.Cols() != 0 {
		t.Fatal("VStack() should be empty")
	}
}

func TestVStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VStack(New[uint64](1, 2), New[uint64](1, 3))
}

func TestRowSlice(t *testing.T) {
	m := FromRows([][]uint64{{1}, {2}, {3}, {4}})
	s := RowSlice(m, 1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 2 || s.At(1, 0) != 3 {
		t.Fatalf("RowSlice wrong: %v", s)
	}
	if s2 := RowSlice(m, 2, 2); s2.Rows() != 0 {
		t.Fatal("empty RowSlice should have 0 rows")
	}
}

func TestRankPrime(t *testing.T) {
	f := field.Prime{}
	cases := []struct {
		name string
		m    *Dense[uint64]
		want int
	}{
		{"identity", Identity[uint64](f, 5), 5},
		{"zero", New[uint64](3, 3), 0},
		{"empty", New[uint64](0, 0), 0},
		{"duplicated rows", FromRows([][]uint64{{1, 2, 3}, {1, 2, 3}, {0, 1, 0}}), 2},
		{"dependent", FromRows([][]uint64{{1, 2}, {2, 4}}), 1},
		{"wide", FromRows([][]uint64{{1, 0, 0, 7}, {0, 1, 0, 7}}), 2},
	}
	for _, tc := range cases {
		if got := Rank[uint64](f, tc.m); got != tc.want {
			t.Errorf("%s: rank = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestRankRealNeedsPivoting(t *testing.T) {
	f := field.Real{}
	// A matrix engineered so naive first-nonzero pivoting accumulates error:
	// tiny leading entry with large rows below.
	m := FromRows([][]float64{
		{1e-13, 1, 0},
		{1, 1, 1},
		{2, 2, 2},
	})
	// Row 3 = 2·row 2, so the true numerical rank at our tolerance is 2.
	if got := Rank[float64](f, m); got != 2 {
		t.Fatalf("rank = %d, want 2 (partial pivoting)", got)
	}
}

func TestRankPreservesInput(t *testing.T) {
	f := field.Prime{}
	m := FromRows([][]uint64{{1, 2}, {3, 4}})
	before := m.Clone()
	Rank[uint64](f, m)
	if !Equal[uint64](f, m, before) {
		t.Fatal("Rank must not modify its input")
	}
}

func TestSolveRoundTrip(t *testing.T) {
	rng := testRNG()
	t.Run("prime", func(t *testing.T) {
		f := field.Prime{}
		for trial := 0; trial < 25; trial++ {
			n := 1 + rng.IntN(8)
			a := Random[uint64](f, rng, n, n)
			if !IsFullRank[uint64](f, a) {
				continue // random singular matrix: astronomically rare, skip
			}
			x := RandomVec[uint64](f, rng, n)
			b := MulVec[uint64](f, a, x)
			got, err := Solve[uint64](f, a, b)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !VecEqual[uint64](f, got, x) {
				t.Fatal("Solve round trip failed")
			}
		}
	})
	t.Run("real", func(t *testing.T) {
		f := field.Real{Tol: 1e-6}
		for trial := 0; trial < 25; trial++ {
			n := 1 + rng.IntN(8)
			a := Random[float64](f, rng, n, n)
			x := RandomVec[float64](f, rng, n)
			b := MulVec[float64](f, a, x)
			got, err := Solve[float64](f, a, b)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !VecEqual[float64](f, got, x) {
				t.Fatalf("Solve round trip failed: got %v want %v", got, x)
			}
		}
	})
}

func TestSolveSingular(t *testing.T) {
	f := field.Prime{}
	a := FromRows([][]uint64{{1, 2}, {2, 4}})
	if _, err := Solve[uint64](f, a, []uint64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("Solve singular error = %v, want ErrSingular", err)
	}
}

func TestInverse(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.IntN(7)
		a := Random[uint64](f, rng, n, n)
		inv, err := Inverse[uint64](f, a)
		if errors.Is(err, ErrSingular) {
			continue
		}
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		if !Equal[uint64](f, Mul[uint64](f, a, inv), Identity[uint64](f, n)) {
			t.Fatal("A·A⁻¹ != I")
		}
		if !Equal[uint64](f, Mul[uint64](f, inv, a), Identity[uint64](f, n)) {
			t.Fatal("A⁻¹·A != I")
		}
	}
	if _, err := Inverse[uint64](f, New[uint64](2, 2)); !errors.Is(err, ErrSingular) {
		t.Fatal("inverse of zero matrix should be ErrSingular")
	}
}

func TestSpanIntersectionDim(t *testing.T) {
	f := field.Prime{}
	e3 := Identity[uint64](f, 3)
	cases := []struct {
		name string
		a, b *Dense[uint64]
		want int
	}{
		{"identical spans", e3, e3.Clone(), 3},
		{"disjoint axes", FromRows([][]uint64{{1, 0, 0}}), FromRows([][]uint64{{0, 1, 0}}), 0},
		{"one shared direction", FromRows([][]uint64{{1, 0, 0}, {0, 1, 0}}), FromRows([][]uint64{{1, 0, 0}, {0, 0, 1}}), 1},
		{"empty operand", New[uint64](0, 0), e3, 0},
		{"mixed combo", FromRows([][]uint64{{1, 1, 0}}), FromRows([][]uint64{{1, 0, 0}, {0, 1, 0}}), 1},
	}
	for _, tc := range cases {
		if got := SpanIntersectionDim[uint64](f, tc.a, tc.b); got != tc.want {
			t.Errorf("%s: dim = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestEqualShapes(t *testing.T) {
	f := field.Prime{}
	if Equal[uint64](f, New[uint64](1, 2), New[uint64](2, 1)) {
		t.Fatal("different shapes must be unequal")
	}
}

func TestStringElides(t *testing.T) {
	small := FromRows([][]uint64{{1, 2}})
	if s := small.String(); !strings.Contains(s, "[1 2]") {
		t.Errorf("small String = %q", s)
	}
	big := New[uint64](100, 100)
	if s := big.String(); !strings.Contains(s, "elided") {
		t.Errorf("big String should be elided, got %q", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]uint64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}
