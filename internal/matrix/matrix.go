// Package matrix implements dense linear algebra over any field.Field.
//
// The package provides exactly the operations secure coded edge computing
// needs — matrix product, matrix–vector product, Gaussian elimination, rank,
// inverse, solving, and block stacking — generically over the element type,
// so the same code runs exactly over F_p / GF(256) and approximately over
// float64.
//
// Conventions:
//   - Matrices are immutable-by-convention row-major dense blocks; operations
//     return fresh matrices and never alias their inputs unless documented.
//   - Shape mismatches are programmer errors and panic (matching the
//     behaviour of mainstream dense-linear-algebra libraries); numerical
//     conditions that depend on data, such as singularity, return errors.
package matrix

import (
	"fmt"
	"strings"

	"github.com/scec/scec/internal/field"
)

// Dense is a dense row-major matrix with elements of type E.
type Dense[E comparable] struct {
	rows, cols int
	data       []E // len == rows*cols, row-major
}

// New returns a rows×cols matrix initialized to the zero value of E (which is
// the field zero for all fields in this repository). New panics if rows or
// cols is negative, and permits zero-dimensional matrices (used for the empty
// coefficient matrix of an unselected edge device).
func New[E comparable](rows, cols int) *Dense[E] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense[E]{rows: rows, cols: cols, data: make([]E, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// data. It panics if the rows are ragged. An empty input yields a 0×0 matrix.
func FromRows[E comparable](rows [][]E) *Dense[E] {
	if len(rows) == 0 {
		return New[E](0, 0)
	}
	cols := len(rows[0])
	m := New[E](len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("matrix: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix over f.
func Identity[E comparable](f field.Field[E], n int) *Dense[E] {
	m := New[E](n, n)
	one := f.One()
	for i := 0; i < n; i++ {
		m.data[i*n+i] = one
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense[E]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense[E]) Cols() int { return m.cols }

// IsEmpty reports whether the matrix has no elements (either dimension zero).
func (m *Dense[E]) IsEmpty() bool { return m.rows == 0 || m.cols == 0 }

// At returns the element at row i, column j.
func (m *Dense[E]) At(i, j int) E {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at row i, column j.
func (m *Dense[E]) Set(i, j int, v E) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense[E]) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense[E]) Row(i int) []E {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d", i, m.rows, m.cols))
	}
	out := make([]E, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// SetRow copies r into row i. It panics if len(r) != Cols().
func (m *Dense[E]) SetRow(i int, r []E) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d", i, m.rows, m.cols))
	}
	if len(r) != m.cols {
		panic(fmt.Sprintf("matrix: SetRow length %d != cols %d", len(r), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], r)
}

// rowView returns the backing slice of row i without copying. Internal use
// only: callers must not let the view escape the package.
func (m *Dense[E]) rowView(i int) []E {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RowView returns the backing slice of row i without copying. The slice
// aliases the matrix, so writes through it mutate the matrix; it exists as
// the performance escape hatch for the row-wise hot paths in package coding
// (encode and batch decode), which would otherwise copy every row. General
// callers should prefer Row and SetRow, which preserve the package's
// immutable-by-convention contract.
func (m *Dense[E]) RowView(i int) []E {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d", i, m.rows, m.cols))
	}
	return m.rowView(i)
}

// RowsView returns the backing storage of rows [from, to) as one flat
// row-major slice of length (to-from)*Cols(), without copying. Like RowView
// it aliases the matrix and exists for the coding hot paths, which process
// runs of consecutive rows with a single vector-kernel call instead of one
// call per row.
func (m *Dense[E]) RowsView(from, to int) []E {
	if from < 0 || to < from || to > m.rows {
		panic(fmt.Sprintf("matrix: row range [%d, %d) out of range for %dx%d", from, to, m.rows, m.cols))
	}
	return m.data[from*m.cols : to*m.cols]
}

// FromSlice wraps data as a rows×cols matrix without copying; the matrix
// aliases data, so the caller must not reuse it. It panics unless
// len(data) == rows*cols. Package coding uses it to carve one encoding's
// device blocks out of a single allocation.
func FromSlice[E comparable](rows, cols int, data []E) *Dense[E] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: FromSlice data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense[E]{rows: rows, cols: cols, data: data}
}

// Clone returns a deep copy.
func (m *Dense[E]) Clone() *Dense[E] {
	out := &Dense[E]{rows: m.rows, cols: m.cols, data: make([]E, len(m.data))}
	copy(out.data, m.data)
	return out
}

// Equal reports element-wise equality under the field's Equal (so Real
// matrices compare with tolerance). Matrices of different shapes are unequal.
func Equal[E comparable](f field.Field[E], a, b *Dense[E]) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if !f.Equal(a.data[i], b.data[i]) {
			return false
		}
	}
	return true
}

// String renders the matrix for diagnostics; large matrices are elided.
func (m *Dense[E]) String() string {
	const maxDim = 12
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %dx%d", m.rows, m.cols)
	if m.rows > maxDim || m.cols > maxDim {
		return b.String() + " (elided)"
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("\n[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%v", m.data[i*m.cols+j])
		}
		b.WriteByte(']')
	}
	return b.String()
}
