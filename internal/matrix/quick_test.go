package matrix

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/scec/scec/internal/field"
)

// quickDims derives small matrix dimensions from raw fuzz bytes.
func quickDims(raw uint8, max int) int { return 1 + int(raw)%max }

// TestQuickDistributivity: A·(B+C) == A·B + A·C over F_p for arbitrary
// shapes and seeded contents.
func TestQuickDistributivity(t *testing.T) {
	f := field.Prime{}
	check := func(rRaw, kRaw, cRaw uint8, seed uint64) bool {
		rows, inner, cols := quickDims(rRaw, 6), quickDims(kRaw, 6), quickDims(cRaw, 6)
		rng := rand.New(rand.NewPCG(seed, 0xd157))
		a := Random[uint64](f, rng, rows, inner)
		b := Random[uint64](f, rng, inner, cols)
		c := Random[uint64](f, rng, inner, cols)
		left := Mul[uint64](f, a, Add[uint64](f, b, c))
		right := Add[uint64](f, Mul[uint64](f, a, b), Mul[uint64](f, a, c))
		return Equal[uint64](f, left, right)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransposeOfProduct: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestQuickTransposeOfProduct(t *testing.T) {
	f := field.GF256{}
	check := func(rRaw, kRaw, cRaw uint8, seed uint64) bool {
		rows, inner, cols := quickDims(rRaw, 6), quickDims(kRaw, 6), quickDims(cRaw, 6)
		rng := rand.New(rand.NewPCG(seed, 0x7a05))
		a := Random[byte](f, rng, rows, inner)
		b := Random[byte](f, rng, inner, cols)
		left := Transpose(Mul[byte](f, a, b))
		right := Mul[byte](f, Transpose(b), Transpose(a))
		return Equal[byte](f, left, right)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRankIsStableUnderRowOps: appending a linear combination of
// existing rows never changes the rank.
func TestQuickRankIsStableUnderRowOps(t *testing.T) {
	f := field.Prime{}
	check := func(rRaw, cRaw uint8, w1, w2 uint64, seed uint64) bool {
		rows, cols := 2+int(rRaw)%4, quickDims(cRaw, 6)
		rng := rand.New(rand.NewPCG(seed, 0x4a4e))
		a := Random[uint64](f, rng, rows, cols)
		combo := make([]uint64, cols)
		r0, r1 := a.Row(0), a.Row(1)
		for j := range combo {
			combo[j] = f.Add(f.Mul(w1%field.Modulus, r0[j]), f.Mul(w2%field.Modulus, r1[j]))
		}
		extended := VStack(a, FromRows([][]uint64{combo}))
		return Rank[uint64](f, extended) == Rank[uint64](f, a)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSolveConsistency: any x we synthesize is recovered by Solve when
// the system is non-singular, over both exact fields.
func TestQuickSolveConsistency(t *testing.T) {
	check := func(nRaw uint8, seed uint64) bool {
		n := 1 + int(nRaw)%7
		rng := rand.New(rand.NewPCG(seed, 0x501e))
		fp := field.Prime{}
		a := Random[uint64](fp, rng, n, n)
		if !IsFullRank[uint64](fp, a) {
			return true // vanishing probability; skip
		}
		x := RandomVec[uint64](fp, rng, n)
		got, err := Solve[uint64](fp, a, MulVec[uint64](fp, a, x))
		if err != nil {
			return false
		}
		return VecEqual[uint64](fp, got, x)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
