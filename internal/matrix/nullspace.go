package matrix

import (
	"github.com/scec/scec/internal/field"
)

// NullSpace returns a basis of the right null space {x : A·x = 0} as the
// rows of the returned matrix (dimension (cols−rank) × cols). A full-rank
// square or tall matrix yields a 0×cols result.
//
// The attack harness uses this constructively: a passive adversary that
// wants a linear combination of its coded rows lying in the data subspace
// needs a left-null vector of the random-column block, i.e.
// NullSpace(Transpose(randomBlock)).
func NullSpace[E comparable](f field.Field[E], a *Dense[E]) *Dense[E] {
	if a.IsEmpty() {
		return New[E](0, a.cols)
	}
	// Reduce a clone to RREF, tracking pivot columns.
	m := a.Clone()
	pivots := make([]int, 0, m.rows)
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		p := findPivot(f, m, rank, col)
		if p < 0 {
			continue
		}
		m.swapRows(rank, p)
		pivotRow := m.rowView(rank)
		inv, err := f.Inv(pivotRow[col])
		if err != nil {
			// findPivot returned a zero pivot: impossible by construction.
			panic("matrix: zero pivot in NullSpace")
		}
		for c := col; c < m.cols; c++ {
			pivotRow[c] = f.Mul(pivotRow[c], inv)
		}
		for r := 0; r < m.rows; r++ {
			if r == rank {
				continue
			}
			row := m.rowView(r)
			factor := row[col]
			if f.IsZero(factor) {
				continue
			}
			for c := col; c < m.cols; c++ {
				row[c] = f.Sub(row[c], f.Mul(factor, pivotRow[c]))
			}
		}
		pivots = append(pivots, col)
		rank++
	}

	isPivot := make([]bool, m.cols)
	for _, c := range pivots {
		isPivot[c] = true
	}
	basis := New[E](m.cols-rank, m.cols)
	one := f.One()
	bi := 0
	for free := 0; free < m.cols; free++ {
		if isPivot[free] {
			continue
		}
		row := basis.rowView(bi)
		row[free] = one
		// Each pivot variable equals minus the RREF entry in the free column.
		for pi, pcol := range pivots {
			row[pcol] = f.Neg(m.At(pi, free))
		}
		bi++
	}
	return basis
}
