package matrix

import (
	"sync"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/obs"
)

// Kernel dispatch: Mul, MulVec, Add, and Sub recognize the three concrete
// fields by type switch and run monomorphized slice kernels (see
// internal/field/kernels.go) instead of the per-element Field method loops.
// Unknown Field implementations fall back to the generic loops, so the
// package keeps working for any field a caller brings. Every dispatch
// decision is counted in the process-wide obs registry so the served
// configuration is visible on /metrics.
//
// The specialized paths are bit-compatible with the generic ones: exact
// fields produce identical canonical representatives, and the Real kernels
// perform the identical float64 operations in the identical order
// (including the tolerance-based sparsity skip in Mul). The differential
// tests in kernels_test.go enforce this for every path.

const (
	opMul = iota
	opMulVec
	opAdd
	opSub
	numOps
)

var opNames = [numOps]string{"mul", "mulvec", "add", "sub"}

// kernelCounters caches the 16 dispatch counter handles (op × impl × mode)
// so the hot paths never touch the registry mutex.
var (
	countersOnce   sync.Once
	kernelCounters [numOps][2][2]*obs.Counter
)

func initCounters() {
	countersOnce.Do(func() {
		r := obs.Default()
		for op := 0; op < numOps; op++ {
			for impl := 0; impl < 2; impl++ {
				for mode := 0; mode < 2; mode++ {
					implName, modeName := "generic", "serial"
					if impl == 1 {
						implName = "specialized"
					}
					if mode == 1 {
						modeName = "parallel"
					}
					kernelCounters[op][impl][mode] = r.Counter(
						obs.MetricKernelDispatchTotal,
						"Dense kernel executions by operation, implementation (specialized|generic), and mode (serial|parallel).",
						obs.L("op", opNames[op]), obs.L("impl", implName), obs.L("mode", modeName))
				}
			}
		}
		setPoolGauge(0) // publish the gauge even before the pool starts
	})
}

// setPoolGauge records the worker-pool size (0 until the pool has started).
func setPoolGauge(n int) {
	obs.Default().Gauge(obs.MetricKernelPoolSize,
		"Workers in the shared dense-kernel pool (0 until first parallel dispatch).").Set(float64(n))
}

func recordDispatch(op int, specialized, parallel bool) {
	initCounters()
	impl, mode := 0, 0
	if specialized {
		impl = 1
	}
	if parallel {
		mode = 1
	}
	kernelCounters[op][impl][mode].Inc()
}

// specializedField reports whether f is one of the three concrete fields
// the kernel layer monomorphizes, honouring the SetSpecializedKernels knob.
func specializedField[E comparable](f field.Field[E]) bool {
	if !specializedEnabled.Load() {
		return false
	}
	switch any(f).(type) {
	case field.Prime, field.GF256, field.Real:
		return true
	}
	return false
}

// mulVecRows computes dst[lo:hi] of a·x with a field-specialized kernel,
// reporting false (leaving dst untouched) when no kernel applies.
func mulVecRows[E comparable](f field.Field[E], a *Dense[E], x []E, dst []E, lo, hi int) bool {
	cols := a.cols
	switch ff := any(f).(type) {
	case field.Prime:
		ad, ok1 := any(a.data).([]uint64)
		xd, ok2 := any(x).([]uint64)
		dd, ok3 := any(dst).([]uint64)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		for i := lo; i < hi; i++ {
			dd[i] = ff.DotVec(ad[i*cols:(i+1)*cols], xd)
		}
		return true
	case field.GF256:
		ad, ok1 := any(a.data).([]byte)
		xd, ok2 := any(x).([]byte)
		dd, ok3 := any(dst).([]byte)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		for i := lo; i < hi; i++ {
			dd[i] = ff.DotVec(ad[i*cols:(i+1)*cols], xd)
		}
		return true
	case field.Real:
		ad, ok1 := any(a.data).([]float64)
		xd, ok2 := any(x).([]float64)
		dd, ok3 := any(dst).([]float64)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		for i := lo; i < hi; i++ {
			dd[i] = ff.DotVec(ad[i*cols:(i+1)*cols], xd)
		}
		return true
	}
	return false
}

// mulRows computes output rows [lo, hi) of a·b with a field-specialized
// kernel, reporting false when no kernel applies. out rows must be zero on
// entry (freshly allocated), matching the generic accumulation loop.
func mulRows[E comparable](f field.Field[E], a, b, out *Dense[E], lo, hi int) bool {
	switch ff := any(f).(type) {
	case field.Prime:
		ad, ok1 := any(a.data).([]uint64)
		bd, ok2 := any(b.data).([]uint64)
		od, ok3 := any(out.data).([]uint64)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		mulRowsPrime(ff, ad, bd, od, a.cols, b.cols, lo, hi)
		return true
	case field.GF256:
		ad, ok1 := any(a.data).([]byte)
		bd, ok2 := any(b.data).([]byte)
		od, ok3 := any(out.data).([]byte)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		for i := lo; i < hi; i++ {
			arow := ad[i*a.cols : (i+1)*a.cols]
			orow := od[i*b.cols : (i+1)*b.cols]
			for k, aik := range arow {
				if aik == 0 {
					continue
				}
				ff.AXPYVec(orow, aik, bd[k*b.cols:(k+1)*b.cols])
			}
		}
		return true
	case field.Real:
		ad, ok1 := any(a.data).([]float64)
		bd, ok2 := any(b.data).([]float64)
		od, ok3 := any(out.data).([]float64)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		for i := lo; i < hi; i++ {
			arow := ad[i*a.cols : (i+1)*a.cols]
			orow := od[i*b.cols : (i+1)*b.cols]
			for k, aik := range arow {
				// Match the generic path's tolerance-based sparsity skip so
				// float results stay bit-identical.
				if ff.IsZero(aik) {
					continue
				}
				ff.AXPYVec(orow, aik, bd[k*b.cols:(k+1)*b.cols])
			}
		}
		return true
	}
	return false
}

// mulRowsPrime is the Mersenne-61 matrix-product kernel: per output row it
// keeps a 128-bit column accumulator pair, folds each 122-bit product once,
// and reduces each output element exactly once at the end of the row —
// turning ~2 reductions per element-op into 1/cols.
func mulRowsPrime(ff field.Prime, ad, bd, od []uint64, acols, bcols, lo, hi int) {
	if bcols == 0 {
		return
	}
	accHi := make([]uint64, bcols)
	accLo := make([]uint64, bcols)
	for i := lo; i < hi; i++ {
		clear(accHi)
		clear(accLo)
		arow := ad[i*acols : (i+1)*acols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := bd[k*bcols : (k+1)*bcols]
			for j, bv := range brow {
				var carry uint64
				accLo[j], carry = field.FoldMulAdd64(accLo[j], aik, bv)
				accHi[j] += carry
			}
		}
		orow := od[i*bcols : (i+1)*bcols]
		for j := range orow {
			orow[j] = ff.Reduce128(accHi[j], accLo[j])
		}
	}
}

// vecAddSpecialized performs dst = a + b with a field kernel, reporting
// false when no kernel applies.
func vecAddSpecialized[E comparable](f field.Field[E], dst, a, b []E) bool {
	switch ff := any(f).(type) {
	case field.Prime:
		dd, ok1 := any(dst).([]uint64)
		ad, ok2 := any(a).([]uint64)
		bd, ok3 := any(b).([]uint64)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		ff.AddVecInto(dd, ad, bd)
		return true
	case field.GF256:
		dd, ok1 := any(dst).([]byte)
		ad, ok2 := any(a).([]byte)
		bd, ok3 := any(b).([]byte)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		ff.AddVecInto(dd, ad, bd)
		return true
	case field.Real:
		dd, ok1 := any(dst).([]float64)
		ad, ok2 := any(a).([]float64)
		bd, ok3 := any(b).([]float64)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		ff.AddVecInto(dd, ad, bd)
		return true
	}
	return false
}

// vecSubSpecialized performs dst = a − b with a field kernel, reporting
// false when no kernel applies.
func vecSubSpecialized[E comparable](f field.Field[E], dst, a, b []E) bool {
	switch ff := any(f).(type) {
	case field.Prime:
		dd, ok1 := any(dst).([]uint64)
		ad, ok2 := any(a).([]uint64)
		bd, ok3 := any(b).([]uint64)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		ff.SubVecInto(dd, ad, bd)
		return true
	case field.GF256:
		dd, ok1 := any(dst).([]byte)
		ad, ok2 := any(a).([]byte)
		bd, ok3 := any(b).([]byte)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		ff.AddVecInto(dd, ad, bd) // Sub == Add in characteristic 2
		return true
	case field.Real:
		dd, ok1 := any(dst).([]float64)
		ad, ok2 := any(a).([]float64)
		bd, ok3 := any(b).([]float64)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		ff.SubVecInto(dd, ad, bd)
		return true
	}
	return false
}

// VecAddInto sets dst[i] = a[i] + b[i] through the field-specialized kernel
// when one applies, serially (callers shard). All slices must have equal
// length. dst may alias a or b.
func VecAddInto[E comparable](f field.Field[E], dst, a, b []E) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("matrix: VecAddInto length mismatch")
	}
	if specializedField(f) && vecAddSpecialized(f, dst, a, b) {
		return
	}
	for i := range a {
		dst[i] = f.Add(a[i], b[i])
	}
}

// VecSubInto sets dst[i] = a[i] − b[i] through the field-specialized kernel
// when one applies, serially (callers shard). All slices must have equal
// length. dst may alias a or b.
func VecSubInto[E comparable](f field.Field[E], dst, a, b []E) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("matrix: VecSubInto length mismatch")
	}
	if specializedField(f) && vecSubSpecialized(f, dst, a, b) {
		return
	}
	for i := range a {
		dst[i] = f.Sub(a[i], b[i])
	}
}
