package matrix

import (
	"errors"
	"testing"

	"github.com/scec/scec/internal/field"
)

func TestLUSolveMatchesGaussian(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(10)
		a := Random[uint64](f, rng, n, n)
		lu, err := Factor[uint64](f, a)
		if errors.Is(err, ErrSingular) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		b := RandomVec[uint64](f, rng, n)
		want, err := Solve[uint64](f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lu.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !VecEqual[uint64](f, got, want) {
			t.Fatal("LU solve != Gaussian solve")
		}
		// Reuse the factorization: a second right-hand side.
		b2 := RandomVec[uint64](f, rng, n)
		want2, err := Solve[uint64](f, a, b2)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := lu.Solve(b2)
		if err != nil {
			t.Fatal(err)
		}
		if !VecEqual[uint64](f, got2, want2) {
			t.Fatal("LU factor reuse produced a wrong solve")
		}
	}
}

func TestLUSolveReal(t *testing.T) {
	f := field.Real{Tol: 1e-6}
	rng := testRNG()
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(8)
		a := Random[float64](f, rng, n, n)
		x := RandomVec[float64](f, rng, n)
		b := MulVec[float64](f, a, x)
		lu, err := Factor[float64](f, a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lu.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if !VecEqual[float64](f, got, x) {
			t.Fatalf("LU solve round trip failed: got %v want %v", got, x)
		}
	}
}

func TestLUSingular(t *testing.T) {
	f := field.Prime{}
	if _, err := Factor[uint64](f, FromRows([][]uint64{{1, 2}, {2, 4}})); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := Factor[uint64](f, New[uint64](3, 3)); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix err = %v, want ErrSingular", err)
	}
}

func TestLUFactorPreservesInput(t *testing.T) {
	f := field.Prime{}
	a := FromRows([][]uint64{{2, 1}, {1, 3}})
	before := a.Clone()
	if _, err := Factor[uint64](f, a); err != nil {
		t.Fatal(err)
	}
	if !Equal[uint64](f, a, before) {
		t.Fatal("Factor must not modify its input")
	}
}

func TestLUSolveMat(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	n := 6
	a := Random[uint64](f, rng, n, n)
	lu, err := Factor[uint64](f, a)
	if err != nil {
		t.Fatal(err)
	}
	x := Random[uint64](f, rng, n, 4)
	b := Mul[uint64](f, a, x)
	got, err := lu.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal[uint64](f, got, x) {
		t.Fatal("SolveMat round trip failed")
	}
	if _, err := lu.SolveMat(New[uint64](n+1, 2)); err == nil {
		t.Fatal("row mismatch should error")
	}
}

func TestLUSolveValidation(t *testing.T) {
	f := field.Prime{}
	lu, err := Factor[uint64](f, Identity[uint64](f, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lu.Solve(make([]uint64, 2)); err == nil {
		t.Fatal("length mismatch should error")
	}
	if lu.N() != 3 {
		t.Fatalf("N = %d, want 3", lu.N())
	}
}

func TestLUDet(t *testing.T) {
	f := field.Real{}
	cases := []struct {
		m    *Dense[float64]
		want float64
	}{
		{FromRows([][]float64{{3}}), 3},
		{FromRows([][]float64{{1, 2}, {3, 4}}), -2},
		{Identity[float64](f, 4), 1},
		{FromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}), 24},
	}
	for _, tc := range cases {
		lu, err := Factor[float64](f, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		if got := lu.Det(); !f.Equal(got, tc.want) {
			t.Errorf("Det = %g, want %g", got, tc.want)
		}
	}
}

func TestLUFactorPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = Factor[uint64](field.Prime{}, New[uint64](2, 3))
}
