package matrix

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"testing"

	"github.com/scec/scec/internal/field"
)

// restoreKernelConfig pins the kernel knobs for a test and restores them on
// cleanup. Tests that touch the knobs must not run in parallel.
func restoreKernelConfig(t *testing.T) {
	t.Helper()
	spec, par, thr := specializedEnabled.Load(), parallelEnabled.Load(), int(parallelThreshold.Load())
	t.Cleanup(func() {
		SetSpecializedKernels(spec)
		SetParallelKernels(par)
		SetParallelThreshold(thr)
	})
}

// kernelShapes covers empty and single-row matrices, odd shapes, and sizes
// straddling the default parallel threshold (rows×cols around 32Ki element
// ops at cols 64: rows 511..513).
var kernelShapes = []struct{ r, k, c int }{
	{0, 0, 0},
	{0, 3, 2},
	{1, 1, 1},
	{1, 64, 5},
	{2, 2, 2},
	{3, 5, 4},
	{7, 7, 7},
	{16, 16, 16},
	{33, 17, 9},
	{63, 65, 3},
	{100, 64, 8},
	{511, 64, 2},
	{512, 64, 2},
	{513, 64, 2},
}

// kernelModes are the dispatch configurations compared against the
// generic-serial reference.
var kernelModes = []struct {
	name            string
	spec, par       bool
	forcedThreshold int // 0 keeps the default
}{
	{"specialized-serial", true, false, 0},
	{"generic-parallel", false, true, 1},
	{"specialized-parallel", true, true, 1},
	{"specialized-parallel-default-threshold", true, true, 0},
}

// diffField checks that every specialized and parallel path produces
// bit-identical results to the generic serial path for Mul, MulVec, Add,
// Sub, and the vector kernels, across the shape grid.
func diffField[E comparable](t *testing.T, f field.Field[E]) {
	rng := rand.New(rand.NewPCG(43, 47))
	for _, shape := range kernelShapes {
		a := Random(f, rng, shape.r, shape.k)
		a2 := Random(f, rng, shape.r, shape.k)
		b := Random(f, rng, shape.k, shape.c)
		x := RandomVec(f, rng, shape.k)

		SetSpecializedKernels(false)
		SetParallelKernels(false)
		wantMul := Mul(f, a, b)
		wantVec := MulVec(f, a, x)
		wantAdd := Add(f, a, a2)
		wantSub := Sub(f, a, a2)

		for _, mode := range kernelModes {
			SetSpecializedKernels(mode.spec)
			SetParallelKernels(mode.par)
			if mode.forcedThreshold > 0 {
				SetParallelThreshold(mode.forcedThreshold)
			} else {
				SetParallelThreshold(DefaultParallelThreshold)
			}
			label := fmt.Sprintf("%s %dx%dx%d", mode.name, shape.r, shape.k, shape.c)

			checkSame(t, label+" Mul", wantMul.data, Mul(f, a, b).data)
			checkSame(t, label+" MulVec", wantVec, MulVec(f, a, x))
			checkSame(t, label+" Add", wantAdd.data, Add(f, a, a2).data)
			checkSame(t, label+" Sub", wantSub.data, Sub(f, a, a2).data)

			if shape.r > 0 {
				va := make([]E, shape.k)
				VecAddInto(f, va, a.rowView(0), a2.rowView(0))
				checkSame(t, label+" VecAddInto", wantAdd.rowView(0), va)
				VecSubInto(f, va, a.rowView(0), a2.rowView(0))
				checkSame(t, label+" VecSubInto", wantSub.rowView(0), va)
			}
		}
		SetSpecializedKernels(true)
		SetParallelKernels(true)
		SetParallelThreshold(DefaultParallelThreshold)
	}
}

func checkSame[E comparable](t *testing.T, label string, want, got []E) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", label, i, got[i], want[i])
		}
	}
}

func TestKernelDifferentialPrime(t *testing.T) {
	restoreKernelConfig(t)
	diffField[uint64](t, field.Prime{})
}

func TestKernelDifferentialGF256(t *testing.T) {
	restoreKernelConfig(t)
	diffField[byte](t, field.GF256{})
}

func TestKernelDifferentialReal(t *testing.T) {
	restoreKernelConfig(t)
	diffField[float64](t, field.Real{})
}

// TestKernelDifferentialRealTolerance pins the subtle Real case: a scalar
// within the comparison tolerance must be skipped by the sparsity check on
// both paths, keeping float results bit-identical.
func TestKernelDifferentialRealTolerance(t *testing.T) {
	restoreKernelConfig(t)
	f := field.Real{Tol: 0.5}
	a := FromRows([][]float64{{0.25, 2}, {-0.4, 3}}) // 0.25, −0.4 are "zero" at Tol 0.5
	b := FromRows([][]float64{{10, 20}, {30, 40}})

	SetSpecializedKernels(false)
	SetParallelKernels(false)
	want := Mul(f, a, b)

	SetSpecializedKernels(true)
	got := Mul(f, a, b)
	checkSame(t, "Real tolerance Mul", want.data, got.data)
	// The skipped entries must genuinely be treated as zero.
	if want.At(0, 0) != 2*30 {
		t.Fatalf("tolerance skip not applied: got %v", want.At(0, 0))
	}
}

// unknownField wraps Prime behind a distinct type so the dispatch type
// switch cannot recognize it: the generic fallback must serve it.
type unknownField struct{ field.Prime }

func TestKernelGenericFallbackUnknownField(t *testing.T) {
	restoreKernelConfig(t)
	rng := rand.New(rand.NewPCG(53, 59))
	var uf field.Field[uint64] = unknownField{}
	a := Random(uf, rng, 20, 30)
	b := Random(uf, rng, 30, 10)
	x := RandomVec(uf, rng, 30)

	SetSpecializedKernels(true)
	SetParallelKernels(true)
	SetParallelThreshold(1)
	gotMul := Mul(uf, a, b)
	gotVec := MulVec(uf, a, x)

	SetSpecializedKernels(false)
	SetParallelKernels(false)
	checkSame(t, "unknown field Mul", Mul(uf, a, b).data, gotMul.data)
	checkSame(t, "unknown field MulVec", MulVec(uf, a, x), gotVec)
}

// TestParallelForCoversAllIndices checks sharding partitions [0, n) exactly
// once for awkward n, including n below and above the worker count.
func TestParallelForCoversAllIndices(t *testing.T) {
	restoreKernelConfig(t)
	SetParallelKernels(true)
	SetParallelThreshold(1)
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 1003} {
		hits := make([]atomic.Int64, n)
		ParallelFor(n, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

// TestParallelForNested checks nested parallel calls complete (the
// non-blocking submit must degrade to inline execution, never deadlock).
func TestParallelForNested(t *testing.T) {
	restoreKernelConfig(t)
	SetParallelKernels(true)
	SetParallelThreshold(1)
	var total atomic.Int64
	ParallelFor(8, 1<<20, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(64, 1<<20, func(l2, h2 int) {
				total.Add(int64(h2 - l2))
			})
		}
	})
	if got := total.Load(); got != 8*64 {
		t.Fatalf("nested ParallelFor visited %d indices, want %d", got, 8*64)
	}
}

// TestKernelKnobsRoundTrip checks the tuning setters return previous values
// and PoolSize is sane.
func TestKernelKnobsRoundTrip(t *testing.T) {
	restoreKernelConfig(t)
	SetSpecializedKernels(true)
	if prev := SetSpecializedKernels(false); !prev {
		t.Fatal("SetSpecializedKernels did not return previous value")
	}
	SetParallelKernels(true)
	if prev := SetParallelKernels(false); !prev {
		t.Fatal("SetParallelKernels did not return previous value")
	}
	SetParallelThreshold(123)
	if prev := SetParallelThreshold(-5); prev != 123 {
		t.Fatalf("SetParallelThreshold returned %d, want 123", prev)
	}
	if prev := SetParallelThreshold(DefaultParallelThreshold); prev != 1 {
		t.Fatalf("negative threshold clamped to %d, want 1", prev)
	}
	if PoolSize() < 1 {
		t.Fatalf("PoolSize() = %d, want >= 1", PoolSize())
	}
}
