package matrix

import (
	"fmt"

	"github.com/scec/scec/internal/field"
)

// LU is a factorization P·A = L·U of a square matrix, stored compactly: the
// strict lower triangle holds L (unit diagonal implied) and the upper
// triangle holds U. It exists for the factor-once / solve-many pattern: a
// decoder that repeatedly solves against the same coefficient matrix (e.g.
// the collusion scheme's B) pays the O(n³) elimination once and O(n²) per
// subsequent right-hand side.
type LU[E comparable] struct {
	f      field.Field[E]
	lu     *Dense[E]
	pivots []int // pivots[i] = row swapped into position i during step i
}

// Factor computes the LU factorization with (scored, for Real) partial
// pivoting. It returns ErrSingular when a is not invertible.
func Factor[E comparable](f field.Field[E], a *Dense[E]) (*LU[E], error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: Factor requires a square matrix, got %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	pivots := make([]int, n)
	for col := 0; col < n; col++ {
		p := findPivot(f, lu, col, col)
		if p < 0 {
			return nil, ErrSingular
		}
		lu.swapRows(col, p)
		pivots[col] = p
		pivotRow := lu.rowView(col)
		inv, err := f.Inv(pivotRow[col])
		if err != nil {
			return nil, ErrSingular
		}
		for r := col + 1; r < n; r++ {
			row := lu.rowView(r)
			if f.IsZero(row[col]) {
				continue
			}
			factor := f.Mul(row[col], inv)
			row[col] = factor // store the L multiplier in place
			for c := col + 1; c < n; c++ {
				row[c] = f.Sub(row[c], f.Mul(factor, pivotRow[c]))
			}
		}
	}
	return &LU[E]{f: f, lu: lu, pivots: pivots}, nil
}

// N returns the dimension of the factored matrix.
func (d *LU[E]) N() int { return d.lu.rows }

// Solve solves A·x = b for one right-hand side in O(n²). The input is not
// modified.
func (d *LU[E]) Solve(b []E) ([]E, error) {
	n := d.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("matrix: LU solve rhs length %d != %d", len(b), n)
	}
	f := d.f
	x := make([]E, n)
	copy(x, b)
	// Apply the recorded row swaps.
	for i, p := range d.pivots {
		if p != i {
			x[i], x[p] = x[p], x[i]
		}
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := d.lu.rowView(i)
		acc := x[i]
		for j := 0; j < i; j++ {
			acc = f.Sub(acc, f.Mul(row[j], x[j]))
		}
		x[i] = acc
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := d.lu.rowView(i)
		acc := x[i]
		for j := i + 1; j < n; j++ {
			acc = f.Sub(acc, f.Mul(row[j], x[j]))
		}
		inv, err := f.Inv(row[i])
		if err != nil {
			return nil, ErrSingular
		}
		x[i] = f.Mul(acc, inv)
	}
	return x, nil
}

// SolveMat solves A·X = B column by column.
func (d *LU[E]) SolveMat(b *Dense[E]) (*Dense[E], error) {
	n := d.lu.rows
	if b.rows != n {
		return nil, fmt.Errorf("matrix: LU SolveMat rhs has %d rows, want %d", b.rows, n)
	}
	out := New[E](n, b.cols)
	col := make([]E, n)
	for c := 0; c < b.cols; c++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, c)
		}
		x, err := d.Solve(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, c, x[i])
		}
	}
	return out, nil
}

// Det returns the determinant, computed as ±Π U_ii from the factorization.
func (d *LU[E]) Det() E {
	f := d.f
	det := f.One()
	for i := 0; i < d.lu.rows; i++ {
		det = f.Mul(det, d.lu.At(i, i))
		if d.pivots[i] != i {
			det = f.Neg(det)
		}
	}
	return det
}
