package matrix

import (
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/field"
)

// Add returns a + b. It panics on shape mismatch.
func Add[E comparable](f field.Field[E], a, b *Dense[E]) *Dense[E] {
	shapeMatch("Add", a, b)
	out := New[E](a.rows, a.cols)
	for i := range a.data {
		out.data[i] = f.Add(a.data[i], b.data[i])
	}
	return out
}

// Sub returns a - b. It panics on shape mismatch.
func Sub[E comparable](f field.Field[E], a, b *Dense[E]) *Dense[E] {
	shapeMatch("Sub", a, b)
	out := New[E](a.rows, a.cols)
	for i := range a.data {
		out.data[i] = f.Sub(a.data[i], b.data[i])
	}
	return out
}

// Scale returns s*a.
func Scale[E comparable](f field.Field[E], s E, a *Dense[E]) *Dense[E] {
	out := New[E](a.rows, a.cols)
	for i := range a.data {
		out.data[i] = f.Mul(s, a.data[i])
	}
	return out
}

// Mul returns the matrix product a·b. It panics when a.Cols() != b.Rows().
// The kernel is the standard i-k-j loop ordering, which walks both operands
// row-major and is the cache-friendly choice for a dense product.
func Mul[E comparable](f field.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New[E](a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.rowView(i)
		orow := out.rowView(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if f.IsZero(aik) {
				continue
			}
			brow := b.rowView(k)
			for j := 0; j < b.cols; j++ {
				orow[j] = f.Add(orow[j], f.Mul(aik, brow[j]))
			}
		}
	}
	return out
}

// MulVec returns the matrix–vector product a·x as a fresh slice. It panics
// when len(x) != a.Cols(). This is the hot operation each edge device runs on
// its coded rows.
func MulVec[E comparable](f field.Field[E], a *Dense[E], x []E) []E {
	if len(x) != a.cols {
		panic(fmt.Sprintf("matrix: MulVec shape mismatch %dx%d · %d", a.rows, a.cols, len(x)))
	}
	out := make([]E, a.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.rowView(i)
		acc := f.Zero()
		for j, xv := range x {
			acc = f.Add(acc, f.Mul(arow[j], xv))
		}
		out[i] = acc
	}
	return out
}

// Transpose returns aᵀ.
func Transpose[E comparable](a *Dense[E]) *Dense[E] {
	out := New[E](a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[j*out.cols+i] = a.data[i*a.cols+j]
		}
	}
	return out
}

// VStack stacks matrices vertically: the result has the rows of each input in
// order. All inputs must share a column count unless they are empty (zero
// rows); fully empty input yields a 0×0 matrix.
func VStack[E comparable](blocks ...*Dense[E]) *Dense[E] {
	cols, rows := -1, 0
	for _, b := range blocks {
		if b.rows == 0 {
			continue
		}
		if cols == -1 {
			cols = b.cols
		} else if b.cols != cols {
			panic(fmt.Sprintf("matrix: VStack column mismatch %d vs %d", cols, b.cols))
		}
		rows += b.rows
	}
	if cols == -1 {
		return New[E](0, 0)
	}
	out := New[E](rows, cols)
	at := 0
	for _, b := range blocks {
		copy(out.data[at:], b.data)
		at += len(b.data)
	}
	return out
}

// HStack concatenates matrices horizontally. All inputs must share a row
// count unless they are empty (zero cols).
func HStack[E comparable](blocks ...*Dense[E]) *Dense[E] {
	rows, cols := -1, 0
	for _, b := range blocks {
		if b.cols == 0 {
			continue
		}
		if rows == -1 {
			rows = b.rows
		} else if b.rows != rows {
			panic(fmt.Sprintf("matrix: HStack row mismatch %d vs %d", rows, b.rows))
		}
		cols += b.cols
	}
	if rows == -1 {
		return New[E](0, 0)
	}
	out := New[E](rows, cols)
	for i := 0; i < rows; i++ {
		at := i * cols
		for _, b := range blocks {
			if b.cols == 0 {
				continue
			}
			copy(out.data[at:], b.rowView(i))
			at += b.cols
		}
	}
	return out
}

// RowSlice returns a copy of rows [from, to) as a new matrix (half-open,
// matching Go slicing; the paper's {·}_a^b notation is the closed range
// [a, b] with 1-based indexes, i.e. RowSlice(m, a-1, b)).
func RowSlice[E comparable](a *Dense[E], from, to int) *Dense[E] {
	if from < 0 || to > a.rows || from > to {
		panic(fmt.Sprintf("matrix: RowSlice [%d,%d) out of range for %d rows", from, to, a.rows))
	}
	out := New[E](to-from, a.cols)
	copy(out.data, a.data[from*a.cols:to*a.cols])
	return out
}

// Random returns a rows×cols matrix with independently uniform entries.
func Random[E comparable](f field.Field[E], rng *rand.Rand, rows, cols int) *Dense[E] {
	out := New[E](rows, cols)
	for i := range out.data {
		out.data[i] = f.Rand(rng)
	}
	return out
}

// RandomVec returns a length-n vector with independently uniform entries.
func RandomVec[E comparable](f field.Field[E], rng *rand.Rand, n int) []E {
	out := make([]E, n)
	for i := range out {
		out[i] = f.Rand(rng)
	}
	return out
}

// VecEqual reports element-wise equality of two vectors under f.Equal.
func VecEqual[E comparable](f field.Field[E], a, b []E) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !f.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func shapeMatch[E comparable](op string, a, b *Dense[E]) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
