package matrix

import (
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/field"
)

// Add returns a + b. It panics on shape mismatch. Large matrices over the
// concrete fields run the specialized vector kernels, sharded across the
// worker pool.
func Add[E comparable](f field.Field[E], a, b *Dense[E]) *Dense[E] {
	shapeMatch("Add", a, b)
	out := New[E](a.rows, a.cols)
	spec := specializedField(f)
	par := parallelFor(len(a.data), len(a.data), func(lo, hi int) {
		if spec && vecAddSpecialized(f, out.data[lo:hi], a.data[lo:hi], b.data[lo:hi]) {
			return
		}
		for i := lo; i < hi; i++ {
			out.data[i] = f.Add(a.data[i], b.data[i])
		}
	})
	recordDispatch(opAdd, spec, par)
	return out
}

// Sub returns a - b. It panics on shape mismatch. Dispatch mirrors Add.
func Sub[E comparable](f field.Field[E], a, b *Dense[E]) *Dense[E] {
	shapeMatch("Sub", a, b)
	out := New[E](a.rows, a.cols)
	spec := specializedField(f)
	par := parallelFor(len(a.data), len(a.data), func(lo, hi int) {
		if spec && vecSubSpecialized(f, out.data[lo:hi], a.data[lo:hi], b.data[lo:hi]) {
			return
		}
		for i := lo; i < hi; i++ {
			out.data[i] = f.Sub(a.data[i], b.data[i])
		}
	})
	recordDispatch(opSub, spec, par)
	return out
}

// Scale returns s*a.
func Scale[E comparable](f field.Field[E], s E, a *Dense[E]) *Dense[E] {
	out := New[E](a.rows, a.cols)
	for i := range a.data {
		out.data[i] = f.Mul(s, a.data[i])
	}
	return out
}

// Mul returns the matrix product a·b. It panics when a.Cols() != b.Rows().
// The loop ordering is the standard i-k-j, which walks both operands
// row-major and is the cache-friendly choice for a dense product; over the
// concrete fields the inner loop runs a monomorphized AXPY (Mersenne-61
// lazy reduction, GF(256) table lookups, raw float64), and large products
// are row-sharded across the worker pool.
func Mul[E comparable](f field.Field[E], a, b *Dense[E]) *Dense[E] {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New[E](a.rows, b.cols)
	spec := specializedField(f)
	par := parallelFor(a.rows, a.rows*a.cols*b.cols, func(lo, hi int) {
		if spec && mulRows(f, a, b, out, lo, hi) {
			return
		}
		for i := lo; i < hi; i++ {
			arow := a.rowView(i)
			orow := out.rowView(i)
			for k := 0; k < a.cols; k++ {
				aik := arow[k]
				if f.IsZero(aik) {
					continue
				}
				brow := b.rowView(k)
				for j := 0; j < b.cols; j++ {
					orow[j] = f.Add(orow[j], f.Mul(aik, brow[j]))
				}
			}
		}
	})
	recordDispatch(opMul, spec, par)
	return out
}

// MulVec returns the matrix–vector product a·x as a fresh slice. It panics
// when len(x) != a.Cols(). This is the hot operation each edge device runs on
// its coded rows.
func MulVec[E comparable](f field.Field[E], a *Dense[E], x []E) []E {
	out := make([]E, a.rows)
	MulVecInto(f, a, x, out)
	return out
}

// MulVecInto computes a·x into dst, which must have length a.Rows(). It is
// the allocation-free variant of MulVec that coding.ComputeAll uses to run
// every device's product directly into its slot of the gathered result.
// Rows are dispatched to the field-specialized dot-product kernels and
// sharded across the worker pool above the parallel threshold.
func MulVecInto[E comparable](f field.Field[E], a *Dense[E], x []E, dst []E) {
	if len(x) != a.cols {
		panic(fmt.Sprintf("matrix: MulVec shape mismatch %dx%d · %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("matrix: MulVecInto dst length %d != rows %d", len(dst), a.rows))
	}
	spec := specializedField(f)
	par := parallelFor(a.rows, a.rows*a.cols, func(lo, hi int) {
		if spec && mulVecRows(f, a, x, dst, lo, hi) {
			return
		}
		for i := lo; i < hi; i++ {
			arow := a.rowView(i)
			acc := f.Zero()
			for j, xv := range x {
				acc = f.Add(acc, f.Mul(arow[j], xv))
			}
			dst[i] = acc
		}
	})
	recordDispatch(opMulVec, spec, par)
}

// Transpose returns aᵀ.
func Transpose[E comparable](a *Dense[E]) *Dense[E] {
	out := New[E](a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[j*out.cols+i] = a.data[i*a.cols+j]
		}
	}
	return out
}

// VStack stacks matrices vertically: the result has the rows of each input in
// order. All inputs must share a column count unless they are empty (zero
// rows); fully empty input yields a 0×0 matrix.
func VStack[E comparable](blocks ...*Dense[E]) *Dense[E] {
	cols, rows := -1, 0
	for _, b := range blocks {
		if b.rows == 0 {
			continue
		}
		if cols == -1 {
			cols = b.cols
		} else if b.cols != cols {
			panic(fmt.Sprintf("matrix: VStack column mismatch %d vs %d", cols, b.cols))
		}
		rows += b.rows
	}
	if cols == -1 {
		return New[E](0, 0)
	}
	out := New[E](rows, cols)
	at := 0
	for _, b := range blocks {
		copy(out.data[at:], b.data)
		at += len(b.data)
	}
	return out
}

// HStack concatenates matrices horizontally. All inputs must share a row
// count unless they are empty (zero cols).
func HStack[E comparable](blocks ...*Dense[E]) *Dense[E] {
	rows, cols := -1, 0
	for _, b := range blocks {
		if b.cols == 0 {
			continue
		}
		if rows == -1 {
			rows = b.rows
		} else if b.rows != rows {
			panic(fmt.Sprintf("matrix: HStack row mismatch %d vs %d", rows, b.rows))
		}
		cols += b.cols
	}
	if rows == -1 {
		return New[E](0, 0)
	}
	out := New[E](rows, cols)
	for i := 0; i < rows; i++ {
		at := i * cols
		for _, b := range blocks {
			if b.cols == 0 {
				continue
			}
			copy(out.data[at:], b.rowView(i))
			at += b.cols
		}
	}
	return out
}

// RowSlice returns a copy of rows [from, to) as a new matrix (half-open,
// matching Go slicing; the paper's {·}_a^b notation is the closed range
// [a, b] with 1-based indexes, i.e. RowSlice(m, a-1, b)).
func RowSlice[E comparable](a *Dense[E], from, to int) *Dense[E] {
	if from < 0 || to > a.rows || from > to {
		panic(fmt.Sprintf("matrix: RowSlice [%d,%d) out of range for %d rows", from, to, a.rows))
	}
	out := New[E](to-from, a.cols)
	copy(out.data, a.data[from*a.cols:to*a.cols])
	return out
}

// Random returns a rows×cols matrix with independently uniform entries.
func Random[E comparable](f field.Field[E], rng *rand.Rand, rows, cols int) *Dense[E] {
	out := New[E](rows, cols)
	for i := range out.data {
		out.data[i] = f.Rand(rng)
	}
	return out
}

// RandomVec returns a length-n vector with independently uniform entries.
func RandomVec[E comparable](f field.Field[E], rng *rand.Rand, n int) []E {
	out := make([]E, n)
	for i := range out {
		out[i] = f.Rand(rng)
	}
	return out
}

// VecEqual reports element-wise equality of two vectors under f.Equal.
func VecEqual[E comparable](f field.Field[E], a, b []E) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !f.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func shapeMatch[E comparable](op string, a, b *Dense[E]) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
