package matrix

import (
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/obs"
)

// TestKernelDispatchMetricsBoundedCardinality drives every op across every
// dispatch configuration and checks the kernel metrics stay within their
// fixed label sets: at most 4 ops × 2 impls × 2 modes = 16 counter series
// plus one pool-size gauge, no matter how many operations run. This matches
// the PR-1 convention of collapsing labels to bounded sets so hot paths can
// never explode /metrics.
func TestKernelDispatchMetricsBoundedCardinality(t *testing.T) {
	restoreKernelConfig(t)
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(61, 67))
	a := Random(f, rng, 40, 40)
	b := Random(f, rng, 40, 40)
	x := RandomVec(f, rng, 40)

	for _, spec := range []bool{false, true} {
		for _, par := range []bool{false, true} {
			SetSpecializedKernels(spec)
			SetParallelKernels(par)
			SetParallelThreshold(1)
			for i := 0; i < 3; i++ {
				_ = Mul(f, a, b)
				_ = MulVec(f, a, x)
				_ = Add(f, a, b)
				_ = Sub(f, a, b)
			}
		}
	}

	allowed := map[string]map[string]bool{
		"op":   {"mul": true, "mulvec": true, "add": true, "sub": true},
		"impl": {"specialized": true, "generic": true},
		"mode": {"serial": true, "parallel": true},
	}
	snap := obs.Default().Snapshot()
	foundDispatch, foundPool := false, false
	for _, fam := range snap.Metrics {
		switch fam.Name {
		case obs.MetricKernelDispatchTotal:
			foundDispatch = true
			if len(fam.Series) > 16 {
				t.Fatalf("%s has %d series, want <= 16", fam.Name, len(fam.Series))
			}
			var total float64
			for _, s := range fam.Series {
				if len(s.Labels) != 3 {
					t.Fatalf("dispatch series has labels %v, want op/impl/mode", s.Labels)
				}
				for key, vals := range allowed {
					if !vals[s.Labels[key]] {
						t.Fatalf("dispatch label %s=%q outside the bounded set", key, s.Labels[key])
					}
				}
				total += s.Value
			}
			if total < 4*4*3 { // 4 configs × 4 ops × 3 reps, plus whatever other tests recorded
				t.Fatalf("dispatch counters sum to %g, want >= 48", total)
			}
		case obs.MetricKernelPoolSize:
			foundPool = true
			if len(fam.Series) != 1 {
				t.Fatalf("%s has %d series, want 1 (no labels)", fam.Name, len(fam.Series))
			}
			if v := fam.Series[0].Value; v < 0 {
				t.Fatalf("pool size gauge = %g, want >= 0", v)
			}
		}
	}
	if !foundDispatch || !foundPool {
		t.Fatalf("kernel metrics missing from registry: dispatch=%v pool=%v", foundDispatch, foundPool)
	}
}

// TestKernelPoolGaugeReflectsStartedPool checks the gauge reports the
// worker count once a parallel dispatch has started the pool.
func TestKernelPoolGaugeReflectsStartedPool(t *testing.T) {
	restoreKernelConfig(t)
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(71, 73))
	a := Random(f, rng, 16, 16)
	SetParallelKernels(true)
	SetParallelThreshold(1)
	_ = Add(f, a, a) // forces a parallelFor with work >= threshold
	if poolSize.Load() == 0 {
		// A 1-core machine never shards (shards < 2), so the pool may
		// legitimately never start; nothing more to assert.
		t.Skip("pool did not start (single-core shard cutoff)")
	}
	snap := obs.Default().Snapshot()
	for _, fam := range snap.Metrics {
		if fam.Name == obs.MetricKernelPoolSize {
			if got, want := fam.Series[0].Value, float64(poolSize.Load()); got != want {
				t.Fatalf("pool gauge = %g, want %g", got, want)
			}
			return
		}
	}
	t.Fatal("pool size gauge not registered")
}
