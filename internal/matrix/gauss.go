package matrix

import (
	"errors"
	"fmt"

	"github.com/scec/scec/internal/field"
)

// ErrSingular is returned by Solve and Inverse when the system matrix is not
// invertible (or, over Real, is numerically singular at the field tolerance).
var ErrSingular = errors.New("matrix: singular matrix")

// PivotScorer is an optional interface a field may implement to rank pivot
// candidates for numerical stability. Exact fields do not need it (any
// non-zero pivot is as good as any other); field.Real implements it with the
// absolute value so elimination uses partial pivoting.
type PivotScorer[E comparable] interface {
	PivotScore(E) float64
}

// findPivot returns the index of the best pivot row in rows [from, m.rows)
// of column col, or -1 when the column is (numerically) zero below from.
func findPivot[E comparable](f field.Field[E], m *Dense[E], from, col int) int {
	scorer, scored := any(f).(PivotScorer[E])
	best, bestScore := -1, 0.0
	for r := from; r < m.rows; r++ {
		v := m.data[r*m.cols+col]
		if f.IsZero(v) {
			continue
		}
		if !scored {
			return r
		}
		if s := scorer.PivotScore(v); s > bestScore {
			best, bestScore = r, s
		}
	}
	return best
}

// swapRows exchanges rows i and j in place.
func (m *Dense[E]) swapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.rowView(i), m.rowView(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// ref reduces m (in place) to row echelon form and returns its rank. Callers
// pass a clone when the original must be preserved.
func ref[E comparable](f field.Field[E], m *Dense[E]) int {
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		p := findPivot(f, m, rank, col)
		if p < 0 {
			continue
		}
		m.swapRows(rank, p)
		pivotRow := m.rowView(rank)
		pivot := pivotRow[col]
		for r := rank + 1; r < m.rows; r++ {
			row := m.rowView(r)
			if f.IsZero(row[col]) {
				continue
			}
			// factor = row[col]/pivot; pivot is non-zero by construction.
			factor, err := f.Div(row[col], pivot)
			if err != nil {
				panic(fmt.Sprintf("matrix: non-zero pivot reported zero: %v", err))
			}
			row[col] = f.Zero()
			for c := col + 1; c < m.cols; c++ {
				row[c] = f.Sub(row[c], f.Mul(factor, pivotRow[c]))
			}
		}
		rank++
	}
	return rank
}

// Rank returns the rank of m over f. The input is not modified. An empty
// matrix has rank 0.
func Rank[E comparable](f field.Field[E], m *Dense[E]) int {
	if m.IsEmpty() {
		return 0
	}
	return ref(f, m.Clone())
}

// IsFullRank reports whether rank(m) == min(rows, cols). The availability
// condition of the paper (Definition 1) is IsFullRank of the square encoding
// coefficient matrix B.
func IsFullRank[E comparable](f field.Field[E], m *Dense[E]) bool {
	want := m.rows
	if m.cols < want {
		want = m.cols
	}
	return Rank(f, m) == want
}

// gaussJordan reduces the augmented matrix [A | aug] with Gauss–Jordan
// elimination, requiring A (n×n, the left block) to be invertible. On return
// the left block is the identity and the right block holds A⁻¹·aug.
func gaussJordan[E comparable](f field.Field[E], a *Dense[E], n int) error {
	for col := 0; col < n; col++ {
		p := findPivot(f, a, col, col)
		if p < 0 {
			return ErrSingular
		}
		a.swapRows(col, p)
		pivotRow := a.rowView(col)
		inv, err := f.Inv(pivotRow[col])
		if err != nil {
			return ErrSingular
		}
		for c := col; c < a.cols; c++ {
			pivotRow[c] = f.Mul(pivotRow[c], inv)
		}
		for r := 0; r < a.rows; r++ {
			if r == col {
				continue
			}
			row := a.rowView(r)
			factor := row[col]
			if f.IsZero(factor) {
				continue
			}
			for c := col; c < a.cols; c++ {
				row[c] = f.Sub(row[c], f.Mul(factor, pivotRow[c]))
			}
		}
	}
	return nil
}

// Solve solves the square linear system A·x = b and returns x. It returns
// ErrSingular when A is not invertible. This is the general-purpose decoder
// path of the paper's system model (§II-A): the user recovers Tx from BTx by
// elimination when it does not use the structured O(m) decoder.
func Solve[E comparable](f field.Field[E], a *Dense[E], b []E) ([]E, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: Solve requires a square system, got %dx%d", a.rows, a.cols))
	}
	if len(b) != a.rows {
		panic(fmt.Sprintf("matrix: Solve rhs length %d != %d", len(b), a.rows))
	}
	n := a.rows
	aug := New[E](n, n+1)
	for i := 0; i < n; i++ {
		copy(aug.rowView(i), a.rowView(i))
		aug.Set(i, n, b[i])
	}
	if err := gaussJordan(f, aug, n); err != nil {
		return nil, err
	}
	x := make([]E, n)
	for i := 0; i < n; i++ {
		x[i] = aug.At(i, n)
	}
	return x, nil
}

// Inverse returns A⁻¹ for a square matrix, or ErrSingular.
func Inverse[E comparable](f field.Field[E], a *Dense[E]) (*Dense[E], error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: Inverse requires a square matrix, got %dx%d", a.rows, a.cols))
	}
	n := a.rows
	aug := HStack(a, Identity(f, n))
	if err := gaussJordan(f, aug, n); err != nil {
		return nil, err
	}
	return RowSliceCols(aug, n, 2*n), nil
}

// RowSliceCols returns a copy of columns [from, to) as a new matrix.
func RowSliceCols[E comparable](a *Dense[E], from, to int) *Dense[E] {
	if from < 0 || to > a.cols || from > to {
		panic(fmt.Sprintf("matrix: RowSliceCols [%d,%d) out of range for %d cols", from, to, a.cols))
	}
	out := New[E](a.rows, to-from)
	for i := 0; i < a.rows; i++ {
		copy(out.rowView(i), a.rowView(i)[from:to])
	}
	return out
}

// SpanIntersectionDim returns dim(L(a) ∩ L(b)), the dimension of the
// intersection of the row spaces of a and b over f, computed with the
// identity dim(U∩V) = dim U + dim V − dim(U+V). The paper's security
// condition (Definition 2, via [20]) is SpanIntersectionDim(B_j, λ̄) == 0
// with λ̄ = [E_m | 0].
//
// Both inputs must share a column count unless one is empty.
func SpanIntersectionDim[E comparable](f field.Field[E], a, b *Dense[E]) int {
	da := Rank(f, a)
	db := Rank(f, b)
	if da == 0 || db == 0 {
		return 0
	}
	sum := Rank(f, VStack(a, b))
	return da + db - sum
}
