package loadgen

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/scec/scec/internal/sim"
)

// VirtualOptions configures a virtual-clock load scenario: the same stepped
// open-loop sweep the wall-clock generator runs, executed as a discrete-
// event simulation over thousands of modelled devices. Requests arrive per
// the schedule on the virtual clock; each round's service time is priced by
// internal/sim's device timeline (the slowest device bounds the round, as in
// the real gather), and the user sustains Concurrency rounds in flight, so
// offered load beyond Concurrency/serviceTime queues — which is exactly the
// saturation knee the sweep detects. Latency is measured from the intended
// virtual arrival time, the same coordinated-omission-safe rule as the real
// generator.
type VirtualOptions struct {
	// Devices is the fleet size; RowsPerDevice the coded rows each holds;
	// Cols the input-vector length. All must be positive.
	Devices, RowsPerDevice, Cols int
	// DeviceRows, when non-empty, gives each device its own coded row count
	// (e.g. an allocation plan's per-device assignment, such as a t-collusion
	// layout): device j serves DeviceRows[j] rows and the slowest device still
	// bounds each round. Its length must equal Devices (or Devices may be left
	// zero to adopt it), and RowsPerDevice is ignored.
	DeviceRows []int
	// Concurrency is how many rounds the user drives in parallel (the
	// service capacity of the queueing model). Zero means 16.
	Concurrency int
	// Profile is the nominal device profile; churn perturbs copies of it.
	// The zero value means sim.DefaultProfile().
	Profile sim.DeviceProfile
	// ChurnEvery is the mean virtual interval between churn events (a device
	// transiently slowing down, or dropping out and re-provisioning). Zero
	// disables churn.
	ChurnEvery time.Duration
	// OutageFrac is the fraction of churn events that are outages — the
	// device leaves and its replacement must receive the coded block before
	// rounds can complete. The rest are slowdowns. Zero means 0.25.
	OutageFrac float64
	// SlowFactorMax bounds the straggler factor churn applies (sampled
	// uniformly from [2, SlowFactorMax]). Zero means 8.
	SlowFactorMax float64
	// SlowDuration is the mean length of a churn slowdown. Zero means
	// 10×ChurnEvery.
	SlowDuration time.Duration
	// Replay, when non-nil, drives per-device straggler factors from a
	// recorded timeline (e.g. ReplayFromStragglers over a live fleet's
	// straggler digest) instead of — or on top of — random churn.
	Replay *Replay

	// Rates, RequestsPerStep, Arrival, Seed, KneeFactor, MinAchievedRatio,
	// and Collector mirror SweepOptions on the virtual clock.
	Rates            []float64
	RequestsPerStep  int
	Arrival          Arrival
	Seed             uint64
	KneeFactor       float64
	MinAchievedRatio float64
	Collector        *Collector
}

// VirtualStats aggregates the churn activity a virtual sweep generated.
type VirtualStats struct {
	// ChurnEvents counts all churn events; Outages the subset that took a
	// device out entirely.
	ChurnEvents, Outages int
}

func (o *VirtualOptions) validate() error {
	if len(o.DeviceRows) > 0 {
		if o.Devices == 0 {
			o.Devices = len(o.DeviceRows)
		}
		if o.Devices != len(o.DeviceRows) {
			return fmt.Errorf("loadgen: DeviceRows lists %d devices but Devices = %d", len(o.DeviceRows), o.Devices)
		}
		for j, rows := range o.DeviceRows {
			if rows <= 0 {
				return fmt.Errorf("loadgen: DeviceRows[%d] = %d; every device needs at least one coded row", j, rows)
			}
		}
		if o.Cols <= 0 {
			return fmt.Errorf("loadgen: virtual scenario needs positive cols (%d)", o.Cols)
		}
	} else if o.Devices <= 0 || o.RowsPerDevice <= 0 || o.Cols <= 0 {
		return fmt.Errorf("loadgen: virtual scenario needs positive devices (%d), rows (%d), and cols (%d)",
			o.Devices, o.RowsPerDevice, o.Cols)
	}
	if len(o.Rates) == 0 {
		return fmt.Errorf("loadgen: virtual sweep needs at least one rate step")
	}
	p := o.profile()
	if err := p.Validate(); err != nil {
		return err
	}
	return o.Replay.Validate()
}

func (o *VirtualOptions) profile() sim.DeviceProfile {
	if o.Profile == (sim.DeviceProfile{}) {
		return sim.DefaultProfile()
	}
	return o.Profile
}

// rowsOn returns device j's coded row count under either layout.
func (o *VirtualOptions) rowsOn(j int) int {
	if len(o.DeviceRows) > 0 {
		return o.DeviceRows[j]
	}
	return o.RowsPerDevice
}

// deviceState is one virtual device's current perturbation.
type deviceState struct {
	// slowUntil bounds the straggler window; slowFactor applies within it.
	slowUntil  time.Duration
	slowFactor float64
	// outageUntil is when the device's replacement finishes re-provisioning;
	// rounds starting before it wait for it.
	outageUntil time.Duration
	// replayFactor is the recorded timeline's current factor (≤ 1 nominal);
	// it composes multiplicatively with an active churn slowdown.
	replayFactor float64
}

// serverHeap is a min-heap of server (round-slot) free times.
type serverHeap []time.Duration

func (h serverHeap) Len() int           { return len(h) }
func (h serverHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h serverHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *serverHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *serverHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// VirtualSweep runs the stepped sweep on the virtual clock and returns the
// per-step curve (Saturated flags set by DetectKnee) plus churn statistics.
// Runs are deterministic in the options: the same seed yields the same
// curve, bit for bit, at any fleet size.
func VirtualSweep(o VirtualOptions) ([]StepResult, VirtualStats, error) {
	if err := o.validate(); err != nil {
		return nil, VirtualStats{}, err
	}
	arrival := o.Arrival
	if arrival == nil {
		arrival = Poisson{}
	}
	var stats VirtualStats
	steps := make([]StepResult, 0, len(o.Rates))
	for i, rate := range o.Rates {
		o.Collector.stepStarted(rate)
		step := o.runStep(rate, arrival, o.Seed+uint64(i), &stats)
		steps = append(steps, step)
		o.Collector.stepDone(step)
	}
	DetectKnee(steps, o.KneeFactor, o.MinAchievedRatio)
	return steps, stats, nil
}

// runStep simulates one offered-load step.
func (o *VirtualOptions) runStep(rate float64, arrival Arrival, seed uint64, stats *VirtualStats) StepResult {
	requests := o.RequestsPerStep
	if requests <= 0 {
		requests = 1000
	}
	concurrency := o.Concurrency
	if concurrency <= 0 {
		concurrency = 16
	}
	base := o.profile()
	rng := rand.New(rand.NewPCG(seed, 0x71a7c10c))
	churnRNG := rand.New(rand.NewPCG(seed, 0xc402a))

	states := make([]deviceState, o.Devices)
	servers := make(serverHeap, concurrency)
	heap.Init(&servers)

	// nominals holds each device's unperturbed round time (they differ only
	// under a DeviceRows layout); nominal is the slowest of them, the healthy
	// round bound, so pricing a round over thousands of devices remains a
	// cheap scan with repricing only for the perturbed few.
	// reprovisions price an outage per device: the replacement receives that
	// device's coded block over its uplink before it can serve.
	nominals := make([]time.Duration, o.Devices)
	reprovisions := make([]time.Duration, o.Devices)
	var nominal time.Duration
	for j := range nominals {
		rows := o.rowsOn(j)
		nominals[j] = sim.DeviceRoundTime(rows, o.Cols, 1, base)
		reprovisions[j] = base.Latency + time.Duration(float64(rows*o.Cols)/base.UplinkRate*float64(time.Second))
		if nominals[j] > nominal {
			nominal = nominals[j]
		}
	}
	outageFrac := o.OutageFrac
	if outageFrac <= 0 {
		outageFrac = 0.25
	}
	slowMax := o.SlowFactorMax
	if slowMax < 2 {
		slowMax = 8
	}
	slowMean := o.SlowDuration
	if slowMean <= 0 {
		slowMean = 10 * o.ChurnEvery
	}

	// replayAdvance walks each recorded timeline's cursor up to the virtual
	// clock; round starts are nondecreasing, so cursors only move forward.
	var cursors []int
	if o.Replay != nil {
		cursors = make([]int, len(o.Replay.Devices))
	}
	replayAdvance := func(now time.Duration) {
		if o.Replay == nil {
			return
		}
		for j, steps := range o.Replay.Devices {
			if j >= len(states) {
				break
			}
			for cursors[j] < len(steps) && steps[cursors[j]].At <= now {
				states[j].replayFactor = steps[cursors[j]].Factor
				cursors[j]++
			}
		}
	}

	nextChurn := time.Duration(-1)
	if o.ChurnEvery > 0 {
		nextChurn = time.Duration(churnRNG.ExpFloat64() * float64(o.ChurnEvery))
	}
	churn := func(now time.Duration) {
		for nextChurn >= 0 && nextChurn <= now {
			at := nextChurn
			j := churnRNG.IntN(o.Devices)
			stats.ChurnEvents++
			if churnRNG.Float64() < outageFrac {
				stats.Outages++
				if end := at + reprovisions[j]; end > states[j].outageUntil {
					states[j].outageUntil = end
				}
			} else {
				states[j].slowFactor = 2 + churnRNG.Float64()*(slowMax-2)
				states[j].slowUntil = at + time.Duration(churnRNG.ExpFloat64()*float64(slowMean))
			}
			nextChurn = at + time.Duration(churnRNG.ExpFloat64()*float64(o.ChurnEvery))
		}
	}

	// service prices one round starting at virtual time t: the slowest
	// device's contribution given its state at t.
	service := func(t time.Duration) time.Duration {
		worst := nominal
		for j := range states {
			st := &states[j]
			if st.outageUntil <= t && st.slowUntil <= t && st.replayFactor <= 1 {
				continue
			}
			d := nominals[j]
			factor := 1.0
			if st.slowUntil > t && st.slowFactor > 1 {
				factor = st.slowFactor
			}
			if st.replayFactor > 1 {
				factor *= st.replayFactor
			}
			if factor > 1 {
				p := base
				p.StragglerFactor = base.StragglerFactor * factor
				d = sim.DeviceRoundTime(o.rowsOn(j), o.Cols, 1, p)
			}
			if st.outageUntil > t {
				d += st.outageUntil - t
			}
			if d > worst {
				worst = d
			}
		}
		return worst
	}

	rec := NewRecorder()
	var offset, lastFinish time.Duration
	for i := 0; i < requests; i++ {
		if i > 0 {
			offset += arrival.Gap(rng, rate)
		}
		arrivalAt := offset
		free := heap.Pop(&servers).(time.Duration)
		start := arrivalAt
		if free > start {
			start = free
		}
		churn(start)
		replayAdvance(start)
		svc := service(start)
		finish := start + svc
		heap.Push(&servers, finish)
		rec.Record(finish - arrivalAt)
		if finish > lastFinish {
			lastFinish = finish
		}
	}

	res := Result{
		Offered:  rate,
		Requests: requests,
		Elapsed:  lastFinish,
		Latency:  rec,
	}
	if lastFinish > 0 {
		res.Achieved = float64(requests) / lastFinish.Seconds()
	}
	return summarize(res)
}
