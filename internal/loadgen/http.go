package loadgen

import (
	"encoding/json"
	"net/http"
	"sync"

	"github.com/scec/scec/internal/obs"
)

// Collector accumulates a harness run's live state for the /debug/slo
// route: completed scenarios, the scenario currently sweeping, and the step
// in flight. All methods are safe for concurrent use and nil-safe, so the
// sweep code can thread an optional collector without guarding every call.
type Collector struct {
	mu        sync.Mutex
	report    Report
	current   *liveScenario
	exemplars func() []obs.SeriesExemplars
}

// liveScenario is the scenario being swept right now.
type liveScenario struct {
	Scenario Scenario `json:"scenario"`
	// StepQPS is the offered load of the step in flight (0 between steps).
	StepQPS float64 `json:"step_qps,omitempty"`
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{report: Report{Version: ReportVersion}}
}

// StartScenario begins live-reporting a scenario; sweep steps land on it via
// the SweepOptions/VirtualOptions Collector hook until FinishScenario.
func (c *Collector) StartScenario(sc Scenario) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.current = &liveScenario{Scenario: sc}
}

// stepStarted marks a step in flight.
func (c *Collector) stepStarted(qps float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current != nil {
		c.current.StepQPS = qps
	}
}

// stepDone appends a completed step to the live scenario.
func (c *Collector) stepDone(step StepResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current != nil {
		c.current.Scenario.Steps = append(c.current.Scenario.Steps, step)
		c.current.StepQPS = 0
	}
}

// FinishScenario replaces the live scenario with its final form (knee and
// SLO results filled in) and files it into the report.
func (c *Collector) FinishScenario(sc Scenario) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report.Scenarios = append(c.report.Scenarios, sc)
	c.current = nil
}

// Report returns a deep-enough copy of the completed scenarios.
func (c *Collector) Report() Report {
	if c == nil {
		return Report{Version: ReportVersion}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Report{Version: c.report.Version}
	out.Scenarios = append(out.Scenarios, c.report.Scenarios...)
	return out
}

// SetExemplarSource attaches a tail-exemplar producer to the collector's
// /debug/slo body — typically a closure over obs.Registry.ExemplarsOf for
// the per-block winner-latency family, so a p99 step in the report links
// straight to the trace and device behind it.
func (c *Collector) SetExemplarSource(fn func() []obs.SeriesExemplars) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.exemplars = fn
}

// sloDebug is the /debug/slo JSON body.
type sloDebug struct {
	Report  Report        `json:"report"`
	Current *liveScenario `json:"current,omitempty"`
	// Exemplars links latency tail buckets to the trace ID + device that
	// last landed in them (see Collector.SetExemplarSource).
	Exemplars []obs.SeriesExemplars `json:"exemplars,omitempty"`
}

// DebugHandler serves the collector's live snapshot as JSON — mount it as
// /debug/slo via the obs handler's extra-route hook.
func (c *Collector) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		obs.JSONHeaders(w)
		var body sloDebug
		if c != nil {
			c.mu.Lock()
			body.Report = Report{Version: c.report.Version}
			body.Report.Scenarios = append(body.Report.Scenarios, c.report.Scenarios...)
			if c.current != nil {
				cur := *c.current
				cur.Scenario.Steps = append([]StepResult(nil), c.current.Scenario.Steps...)
				body.Current = &cur
			}
			source := c.exemplars
			c.mu.Unlock()
			if source != nil {
				body.Exemplars = source()
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
}
