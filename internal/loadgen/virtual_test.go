package loadgen

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func thousandDeviceOpts() VirtualOptions {
	return VirtualOptions{
		Devices:       1000,
		RowsPerDevice: 2,
		Cols:          64,
		Concurrency:   16,
		ChurnEvery:    200 * time.Millisecond,
		Rates:         []float64{500, 1000, 2000, 4000},
		// Small step budget keeps the test fast; determinism makes it exact.
		RequestsPerStep: 400,
		Seed:            11,
	}
}

func TestVirtualSweepDeterministic(t *testing.T) {
	a, statsA, err := VirtualSweep(thousandDeviceOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, statsB, err := VirtualSweep(thousandDeviceOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same options, different curves:\n%+v\n%+v", a, b)
	}
	if statsA != statsB {
		t.Fatalf("same options, different churn: %+v vs %+v", statsA, statsB)
	}
}

func TestVirtualSweepThousandDevicesWithChurn(t *testing.T) {
	o := thousandDeviceOpts()
	steps, stats, err := VirtualSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(o.Rates) {
		t.Fatalf("got %d steps, want %d", len(steps), len(o.Rates))
	}
	if stats.ChurnEvents == 0 {
		t.Fatal("churn enabled but no churn events fired")
	}
	for i, s := range steps {
		if s.Requests != o.RequestsPerStep {
			t.Errorf("step %d: requests = %d, want %d", i, s.Requests, o.RequestsPerStep)
		}
		if s.P50 <= 0 || s.P99 < s.P50 || s.P999 < s.P99 || s.Max < s.P999 {
			t.Errorf("step %d: quantiles out of order: %+v", i, s)
		}
	}
	knee := DetectKnee(steps, 0, 0)
	// The model's service time (~10ms/round, 16 rounds in flight) caps
	// sustainable throughput well under the top offered rate, so the sweep
	// must find a knee strictly inside the swept range.
	if knee <= 0 || knee >= o.Rates[len(o.Rates)-1] {
		t.Fatalf("knee = %g QPS, want inside (0, %g); steps: %+v", knee, o.Rates[len(o.Rates)-1], steps)
	}
	if !steps[len(steps)-1].Saturated {
		t.Fatalf("top step at %g QPS should be saturated: %+v", o.Rates[len(o.Rates)-1], steps[len(steps)-1])
	}
}

func TestVirtualSweepChurnLengthensTail(t *testing.T) {
	calm := thousandDeviceOpts()
	calm.ChurnEvery = 0
	calm.Rates = []float64{500}
	churny := thousandDeviceOpts()
	churny.Rates = []float64{500}
	churny.ChurnEvery = 50 * time.Millisecond
	churny.OutageFrac = 0.5

	a, _, err := VirtualSweep(calm)
	if err != nil {
		t.Fatal(err)
	}
	b, stats, err := VirtualSweep(churny)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outages == 0 {
		t.Fatal("expected outages at OutageFrac=0.5")
	}
	if b[0].P999 <= a[0].P999 {
		t.Fatalf("churn must lengthen the tail: calm p999 %v, churny p999 %v", a[0].P999, b[0].P999)
	}
}

func TestVirtualSweepValidation(t *testing.T) {
	bad := thousandDeviceOpts()
	bad.Devices = 0
	if _, _, err := VirtualSweep(bad); err == nil || !strings.Contains(err.Error(), "positive devices") {
		t.Fatalf("zero devices accepted: %v", err)
	}
	bad = thousandDeviceOpts()
	bad.Rates = nil
	if _, _, err := VirtualSweep(bad); err == nil {
		t.Fatal("empty rate list accepted")
	}
}

func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector()
	c.StartScenario(Scenario{Name: "live"})
	c.stepStarted(100)
	c.stepDone(StepResult{OfferedQPS: 100})
	sc := Scenario{Name: "live", KneeQPS: 100, Steps: []StepResult{{OfferedQPS: 100}}}
	c.FinishScenario(sc)
	rep := c.Report()
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Name != "live" {
		t.Fatalf("collector report: %+v", rep)
	}
	// Nil collector: every hook is a no-op, no panics.
	var nc *Collector
	nc.StartScenario(sc)
	nc.stepStarted(1)
	nc.stepDone(StepResult{})
	nc.FinishScenario(sc)
	if got := nc.Report(); len(got.Scenarios) != 0 {
		t.Fatalf("nil collector report: %+v", got)
	}
}
