package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
)

// Target is the system under test: one request. The generator calls it from
// many goroutines; implementations must be safe for concurrent use. The
// context carries the per-request deadline and the run's cancellation.
type Target func(ctx context.Context) error

// DefaultMaxInFlight bounds outstanding requests when Options leaves
// MaxInFlight zero — a memory backstop, not a pacing mechanism: requests
// that cannot launch because the bound is hit are counted as shed and their
// queue delay is still recorded, so saturation shows up in the tail instead
// of silently throttling the offered load.
const DefaultMaxInFlight = 4096

// Options configures one open-loop run.
type Options struct {
	// Rate is the offered load in requests per second. Must be > 0.
	Rate float64
	// Requests is how many requests the schedule issues. Must be > 0.
	Requests int
	// Arrival is the inter-arrival schedule. Nil means Poisson{}.
	Arrival Arrival
	// Seed drives the arrival schedule's RNG.
	Seed uint64
	// Timeout bounds each request's context; zero means no per-request bound
	// (the run context still applies).
	Timeout time.Duration
	// MaxInFlight caps concurrently outstanding requests; zero means
	// DefaultMaxInFlight.
	MaxInFlight int
	// Metrics receives the generator's gauges and counters. Nil means
	// obs.Default().
	Metrics *obs.Registry
}

// Result is one run's outcome.
type Result struct {
	// Offered is the configured rate; Achieved is completed requests divided
	// by the elapsed wall time.
	Offered, Achieved float64
	// Requests is the scheduled request count; Errors how many returned an
	// error; Shed how many never launched because MaxInFlight was exhausted.
	Requests, Errors, Shed int
	// Elapsed spans the first intended arrival to the last completion.
	Elapsed time.Duration
	// Latency holds every request's latency measured from its intended
	// arrival time (shed requests record their queue delay at shed time).
	Latency *Recorder
	// FirstErr retains the first request error for diagnostics.
	FirstErr error
}

func (o *Options) validate() error {
	if o.Rate <= 0 {
		return fmt.Errorf("loadgen: offered rate %g must be positive", o.Rate)
	}
	if o.Requests <= 0 {
		return fmt.Errorf("loadgen: request count %d must be positive", o.Requests)
	}
	return nil
}

// Run drives the target open-loop: request i's send time is derived from the
// arrival schedule alone (never from request i-1's completion), and its
// latency is measured from that intended time. If the pacer falls behind the
// schedule — the scheduler hiccuped, or a stalled target is holding
// MaxInFlight goroutines — requests launch late but are timed from when they
// *should* have been sent, so the backlog's queue delay lands in the
// recorded distribution instead of being omitted. Run returns once every
// launched request completes; cancelling ctx stops the schedule early and
// cancels in-flight requests.
func Run(ctx context.Context, target Target, o Options) (Result, error) {
	if err := o.validate(); err != nil {
		return Result{}, err
	}
	if target == nil {
		return Result{}, errors.New("loadgen: nil target")
	}
	arrival := o.Arrival
	if arrival == nil {
		arrival = Poisson{}
	}
	maxInFlight := o.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	okCount := reg.Counter(obs.MetricLoadRequestsTotal, loadRequestsHelp, obs.L("outcome", "ok"))
	errCount := reg.Counter(obs.MetricLoadRequestsTotal, loadRequestsHelp, obs.L("outcome", "error"))
	shedCount := reg.Counter(obs.MetricLoadRequestsTotal, loadRequestsHelp, obs.L("outcome", "shed"))
	inFlight := reg.Gauge(obs.MetricLoadInFlight, "Requests currently outstanding at the load generator.")
	reg.Gauge(obs.MetricLoadOfferedQPS, "Offered load of the current open-loop run in requests/second.").Set(o.Rate)

	rng := rand.New(rand.NewPCG(o.Seed, 0x10adc3))
	rec := NewRecorder()
	res := Result{Offered: o.Rate, Latency: rec}
	var errCnt, shed atomic.Int64
	var firstErr atomic.Value
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup

	start := time.Now()
	var offset time.Duration
	issued := 0
pace:
	for i := 0; i < o.Requests; i++ {
		if i > 0 {
			offset += arrival.Gap(rng, o.Rate)
		}
		intended := start.Add(offset)
		if wait := time.Until(intended); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				break pace
			}
		} else if ctx.Err() != nil {
			break pace
		}
		issued++
		select {
		case sem <- struct{}{}:
		default:
			// MaxInFlight outstanding already: the target is saturated well
			// past the knee. Shed the request but keep its sample — the delay
			// it observed waiting to be shed is real queueing.
			rec.Record(time.Since(intended))
			shed.Add(1)
			shedCount.Inc()
			flight.Default().Publish(flight.KindShed, "", int64(issued), 0)
			continue
		}
		wg.Add(1)
		inFlight.Add(1)
		go func(intended time.Time) {
			defer wg.Done()
			rctx, cancel := ctx, context.CancelFunc(func() {})
			if o.Timeout > 0 {
				rctx, cancel = context.WithTimeout(ctx, o.Timeout)
			}
			err := target(rctx)
			cancel()
			rec.Record(time.Since(intended))
			if err != nil {
				errCnt.Add(1)
				errCount.Inc()
				firstErr.CompareAndSwap(nil, err)
			} else {
				okCount.Inc()
			}
			inFlight.Add(-1)
			<-sem
		}(intended)
	}
	wg.Wait()

	res.Elapsed = time.Since(start)
	res.Requests = issued
	res.Errors = int(errCnt.Load())
	res.Shed = int(shed.Load())
	if done := issued - res.Shed; done > 0 && res.Elapsed > 0 {
		res.Achieved = float64(done) / res.Elapsed.Seconds()
	}
	if err, ok := firstErr.Load().(error); ok {
		res.FirstErr = err
	}
	return res, ctx.Err()
}

const loadRequestsHelp = "Requests issued by the load generator, by outcome (ok, error, shed)."

// RunClosed is the deliberately coordinated-omission-prone baseline: a fixed
// pool of workers, each issuing its next request only after the previous one
// returns, with latency measured from the actual send time. While the target
// stalls, the workers stop sending — the stall contributes `workers` slow
// samples instead of the full backlog an open-loop schedule would have
// accumulated. It exists so tests and reports can quantify exactly how much
// a closed-loop harness under-reports tail latency; never use it to check an
// SLO.
func RunClosed(ctx context.Context, target Target, workers, requests int, timeout time.Duration) (Result, error) {
	if workers <= 0 || requests <= 0 {
		return Result{}, fmt.Errorf("loadgen: closed loop needs positive workers (%d) and requests (%d)", workers, requests)
	}
	if target == nil {
		return Result{}, errors.New("loadgen: nil target")
	}
	rec := NewRecorder()
	var next, errCnt atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil && next.Add(1) <= int64(requests) {
				sent := time.Now()
				rctx, cancel := ctx, context.CancelFunc(func() {})
				if timeout > 0 {
					rctx, cancel = context.WithTimeout(ctx, timeout)
				}
				err := target(rctx)
				cancel()
				rec.Record(time.Since(sent))
				if err != nil {
					errCnt.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	done := int(rec.Count())
	res := Result{
		Requests: done,
		Errors:   int(errCnt.Load()),
		Elapsed:  elapsed,
		Latency:  rec,
	}
	if elapsed > 0 {
		res.Achieved = float64(done) / elapsed.Seconds()
		res.Offered = res.Achieved // closed loops offer only what completes
	}
	if err, ok := firstErr.Load().(error); ok {
		res.FirstErr = err
	}
	return res, ctx.Err()
}
