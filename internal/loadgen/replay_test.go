package loadgen

import (
	"testing"
	"time"

	"github.com/scec/scec/internal/obs/trace"
)

func TestReplayValidate(t *testing.T) {
	var nilReplay *Replay
	if err := nilReplay.Validate(); err != nil {
		t.Fatalf("nil replay must be valid: %v", err)
	}
	ok := &Replay{Devices: [][]ReplayStep{
		nil,
		{{At: 0, Factor: 1}, {At: time.Second, Factor: 4}, {At: time.Second, Factor: 1}},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid replay rejected: %v", err)
	}
	outOfOrder := &Replay{Devices: [][]ReplayStep{
		{{At: time.Second, Factor: 2}, {At: 0, Factor: 1}},
	}}
	if err := outOfOrder.Validate(); err == nil {
		t.Fatal("out-of-order schedule accepted")
	}
	badFactor := &Replay{Devices: [][]ReplayStep{
		{{At: 0, Factor: 0}},
	}}
	if err := badFactor.Validate(); err == nil {
		t.Fatal("non-positive factor accepted")
	}
}

func TestReplayFromStragglers(t *testing.T) {
	digest := []trace.DeviceStats{
		{Device: "a", Samples: 100, P50: 10 * time.Millisecond, P95: 12 * time.Millisecond},
		{Device: "b", Samples: 100, P50: 10 * time.Millisecond, P95: 50 * time.Millisecond},
		{Device: "c", Samples: 0}, // never won an attempt: stays nominal
		{Device: "d", Samples: 100, P50: 10 * time.Millisecond, P95: 5 * time.Millisecond},
	}
	r := ReplayFromStragglers(digest)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Devices) != len(digest) {
		t.Fatalf("replay covers %d devices, want %d", len(r.Devices), len(digest))
	}
	// b's p95 is 5× the fleet-median p50: the replay makes it straggle 5×.
	if got := r.Devices[1][0].Factor; got < 4.9 || got > 5.1 {
		t.Fatalf("straggler factor = %g, want ≈5", got)
	}
	// a is barely above nominal, d below: factors clamp to ≥ 1.
	if got := r.Devices[0][0].Factor; got < 1 {
		t.Fatalf("device a factor = %g, want ≥ 1", got)
	}
	if got := r.Devices[3][0].Factor; got != 1 {
		t.Fatalf("fast device factor = %g, want clamped to 1", got)
	}
	if r.Devices[2] != nil {
		t.Fatalf("sample-less device got a schedule: %v", r.Devices[2])
	}

	if empty := ReplayFromStragglers(nil); len(empty.Devices) != 0 || empty.Validate() != nil {
		t.Fatalf("empty digest should yield an empty valid replay: %+v", empty)
	}
}

// TestVirtualSweepReplayDegradesTail pins that a replayed straggler actually
// shows up in the virtual sweep's latency curve, deterministically.
func TestVirtualSweepReplayDegradesTail(t *testing.T) {
	base := VirtualOptions{
		Devices: 50, RowsPerDevice: 8, Cols: 64,
		Concurrency:     4,
		Rates:           []float64{200},
		RequestsPerStep: 400,
		Seed:            7,
	}
	clean, _, err := VirtualSweep(base)
	if err != nil {
		t.Fatal(err)
	}

	replayed := base
	replayed.Replay = &Replay{Devices: [][]ReplayStep{
		3: {{At: 0, Factor: 10}},
	}}
	slow, _, err := VirtualSweep(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if slow[0].P99 <= clean[0].P99 {
		t.Fatalf("replayed 10× straggler did not degrade p99: clean %v vs replayed %v", clean[0].P99, slow[0].P99)
	}

	again, _, err := VirtualSweep(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].P99 != slow[0].P99 || again[0].P50 != slow[0].P50 {
		t.Fatalf("replayed sweep is not deterministic: %v vs %v", again[0], slow[0])
	}

	bad := base
	bad.Replay = &Replay{Devices: [][]ReplayStep{{{At: 0, Factor: -1}}}}
	if _, _, err := VirtualSweep(bad); err == nil {
		t.Fatal("invalid replay accepted by VirtualSweep")
	}
}
