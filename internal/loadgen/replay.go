package loadgen

import (
	"fmt"
	"time"

	"github.com/scec/scec/internal/obs/trace"
)

// ReplayStep is one change point in a device's recorded slowdown timeline:
// from At onward the device's compute is Factor× its nominal speed, until
// the next step (factors ≤ 1 mean nominal).
type ReplayStep struct {
	At     time.Duration `json:"atNs"`
	Factor float64       `json:"factor"`
}

// Replay pins per-device straggler factors to a recorded timeline instead of
// (or on top of) random churn: Devices[j] is device j's piecewise-constant
// factor schedule, in virtual-clock order. A nil/short schedule leaves the
// device nominal. Replays compose multiplicatively with churn slowdowns;
// runs meant to reproduce a recorded incident typically set ChurnEvery to
// zero so the replay is the only perturbation.
type Replay struct {
	Devices [][]ReplayStep `json:"devices"`
}

// Validate rejects unsorted schedules and non-positive factors.
func (r *Replay) Validate() error {
	if r == nil {
		return nil
	}
	for j, steps := range r.Devices {
		last := time.Duration(-1)
		for i, s := range steps {
			if s.At < last {
				return fmt.Errorf("loadgen: replay device %d step %d at %v is out of order", j, i, s.At)
			}
			last = s.At
			if s.Factor <= 0 {
				return fmt.Errorf("loadgen: replay device %d step %d has factor %g, need > 0", j, i, s.Factor)
			}
		}
	}
	return nil
}

// ReplayFromStragglers converts a live fleet's straggler digest into a
// replay profile: each device's factor is its p95 winning-attempt latency
// relative to the fleet-median p50, clamped to at least 1 — i.e. "make the
// virtual fleet straggle the way the real one just did". Devices appear in
// digest order; devices without samples stay nominal.
func ReplayFromStragglers(digest []trace.DeviceStats) *Replay {
	var p50s []time.Duration
	for _, d := range digest {
		if d.Samples > 0 && d.P50 > 0 {
			p50s = append(p50s, d.P50)
		}
	}
	baseline := medianDuration(p50s)
	r := &Replay{Devices: make([][]ReplayStep, len(digest))}
	if baseline <= 0 {
		return r
	}
	for j, d := range digest {
		if d.Samples == 0 || d.P95 <= 0 {
			continue
		}
		factor := float64(d.P95) / float64(baseline)
		if factor < 1 {
			factor = 1
		}
		r.Devices[j] = []ReplayStep{{At: 0, Factor: factor}}
	}
	return r
}

func medianDuration(v []time.Duration) time.Duration {
	if len(v) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), v...)
	for i := 1; i < len(s); i++ { // insertion sort; digests are small
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
