package loadgen

import (
	"context"
	"testing"
	"time"

	"github.com/scec/scec/internal/obs"
)

func TestDetectKneeSyntheticCurve(t *testing.T) {
	mk := func(qps float64, p99 time.Duration, achieved float64) StepResult {
		return StepResult{OfferedQPS: qps, AchievedQPS: achieved, Requests: 1000, P99: p99}
	}
	steps := []StepResult{
		mk(100, 10*time.Millisecond, 100),
		mk(200, 12*time.Millisecond, 200),
		mk(400, 50*time.Millisecond, 390), // p99 > 3× base: saturated
		mk(800, 500*time.Millisecond, 420),
	}
	knee := DetectKnee(steps, 0, 0)
	if knee != 200 {
		t.Fatalf("knee = %g, want 200", knee)
	}
	if steps[0].Saturated || steps[1].Saturated || !steps[2].Saturated || !steps[3].Saturated {
		t.Fatalf("saturation flags wrong: %+v", steps)
	}
}

func TestDetectKneeMonotone(t *testing.T) {
	mk := func(qps float64, p99 time.Duration) StepResult {
		return StepResult{OfferedQPS: qps, AchievedQPS: qps, Requests: 1000, P99: p99}
	}
	// A noisy dip back under the latency threshold after saturation must not
	// count as recovered capacity.
	steps := []StepResult{
		mk(100, 10*time.Millisecond),
		mk(200, 100*time.Millisecond), // saturated
		mk(400, 15*time.Millisecond),  // noise dip — still past the knee
	}
	knee := DetectKnee(steps, 3, 0.9)
	if knee != 100 {
		t.Fatalf("knee = %g, want 100 (saturation is monotone)", knee)
	}
	if !steps[2].Saturated {
		t.Fatal("step after the knee must stay saturated")
	}
}

func TestDetectKneeStarvedAndErrors(t *testing.T) {
	steps := []StepResult{
		{OfferedQPS: 100, AchievedQPS: 100, Requests: 1000, P99: time.Millisecond},
		{OfferedQPS: 200, AchievedQPS: 150, Requests: 1000, P99: time.Millisecond}, // achieved < 0.9×offered
	}
	if knee := DetectKnee(steps, 3, 0.9); knee != 100 {
		t.Fatalf("starved step: knee = %g, want 100", knee)
	}
	steps = []StepResult{
		{OfferedQPS: 100, AchievedQPS: 100, Requests: 1000, P99: time.Millisecond, Errors: 50},
	}
	if knee := DetectKnee(steps, 3, 0.9); knee != 0 {
		t.Fatalf("5%% errors on the first step: knee = %g, want 0", knee)
	}
	if DetectKnee(nil, 0, 0) != 0 {
		t.Fatal("empty sweep must have no knee")
	}
}

func TestSweepRunsAllSteps(t *testing.T) {
	col := NewCollector()
	col.StartScenario(Scenario{Name: "test"})
	steps, err := Sweep(context.Background(), func(ctx context.Context) error { return nil }, SweepOptions{
		Rates:           []float64{500, 1000},
		RequestsPerStep: 100,
		Arrival:         Uniform{},
		Metrics:         obs.New(),
		Collector:       col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(steps))
	}
	for i, s := range steps {
		if s.Requests != 100 {
			t.Errorf("step %d: requests = %d, want 100", i, s.Requests)
		}
	}
	if steps[0].OfferedQPS != 500 || steps[1].OfferedQPS != 1000 {
		t.Fatalf("offered rates wrong: %+v", steps)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	steps, err := Sweep(ctx, func(ctx context.Context) error { return nil }, SweepOptions{
		Rates:           []float64{100},
		RequestsPerStep: 10,
	})
	if err == nil {
		t.Fatalf("cancelled sweep returned nil error with %d steps", len(steps))
	}
}

func TestStepRequestsFromDuration(t *testing.T) {
	o := SweepOptions{StepDuration: 2 * time.Second}
	if n := o.stepRequests(100); n != 200 {
		t.Fatalf("stepRequests(100) = %d, want 200", n)
	}
	if n := o.stepRequests(1); n != 50 {
		t.Fatalf("stepRequests(1) = %d, want the 50 minimum", n)
	}
	o = SweepOptions{RequestsPerStep: 77}
	if n := o.stepRequests(1000); n != 77 {
		t.Fatalf("explicit RequestsPerStep ignored: %d", n)
	}
}

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("p99<=50ms@200")
	if err != nil {
		t.Fatal(err)
	}
	if s.Quantile != "p99" || s.Bound != 50*time.Millisecond || s.AtQPS != 200 {
		t.Fatalf("parsed %+v", s)
	}
	if s.String() != "p99<=50ms@200" {
		t.Fatalf("String() = %q, not round-trippable", s.String())
	}
	for _, bad := range []string{"", "p99<=50ms", "p98<=50ms@200", "p99<=zzz@200", "p99<=50ms@-1", "p99<=-5ms@200"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
	slos, err := ParseSLOs("p50<=1ms@100, p999<=1s@100")
	if err != nil || len(slos) != 2 {
		t.Fatalf("ParseSLOs: %v, %v", slos, err)
	}
	if slos, err := ParseSLOs("  "); err != nil || slos != nil {
		t.Fatalf("blank SLO list: %v, %v", slos, err)
	}
}

func TestSLOEval(t *testing.T) {
	steps := []StepResult{
		{OfferedQPS: 100, P99: 5 * time.Millisecond},
		{OfferedQPS: 300, P99: 80 * time.Millisecond},
	}
	res, err := SLO{Quantile: "p99", Bound: 10 * time.Millisecond, AtQPS: 100}.Eval(steps)
	if err != nil || !res.OK || res.MeasuredAtQPS != 100 {
		t.Fatalf("eval at 100: %+v, %v", res, err)
	}
	// AtQPS between steps binds to the first step offering at least that much.
	res, err = SLO{Quantile: "p99", Bound: 10 * time.Millisecond, AtQPS: 200}.Eval(steps)
	if err != nil || res.OK || res.MeasuredAtQPS != 300 {
		t.Fatalf("eval at 200: %+v, %v", res, err)
	}
	if _, err := (SLO{Quantile: "p99", Bound: time.Millisecond, AtQPS: 1000}).Eval(steps); err == nil {
		t.Fatal("SLO beyond the sweep's max rate must error")
	}
}

func TestScenarioCheckSLOs(t *testing.T) {
	sc := Scenario{
		Name:  "t",
		Steps: []StepResult{{OfferedQPS: 100, P99: 20 * time.Millisecond}},
	}
	err := sc.CheckSLOs([]SLO{
		{Quantile: "p99", Bound: 50 * time.Millisecond, AtQPS: 100},
		{Quantile: "p99", Bound: 10 * time.Millisecond, AtQPS: 100},
	})
	if err == nil {
		t.Fatal("violated SLO not reported")
	}
	if len(sc.SLOs) != 2 || !sc.SLOs[0].OK || sc.SLOs[1].OK {
		t.Fatalf("SLO results wrong: %+v", sc.SLOs)
	}
	rep := Report{Version: ReportVersion, Scenarios: []Scenario{sc}}
	if rep.Check() == nil {
		t.Fatal("report check must surface the violation")
	}
}
