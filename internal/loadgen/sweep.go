package loadgen

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/scec/scec/internal/obs"
)

// StepResult is one offered-load step of a sweep, with the tail summary the
// latency-vs-load curve plots.
type StepResult struct {
	OfferedQPS  float64       `json:"offered_qps"`
	AchievedQPS float64       `json:"achieved_qps"`
	Requests    int           `json:"requests"`
	Errors      int           `json:"errors"`
	Shed        int           `json:"shed,omitempty"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
	P999        time.Duration `json:"p999_ns"`
	Max         time.Duration `json:"max_ns"`
	Mean        time.Duration `json:"mean_ns"`
	// Saturated marks the step as past the knee (see DetectKnee).
	Saturated bool `json:"saturated"`
}

// summarize folds a run result into a step row.
func summarize(r Result) StepResult {
	return StepResult{
		OfferedQPS:  r.Offered,
		AchievedQPS: r.Achieved,
		Requests:    r.Requests,
		Errors:      r.Errors,
		Shed:        r.Shed,
		P50:         r.Latency.Quantile(0.50),
		P99:         r.Latency.Quantile(0.99),
		P999:        r.Latency.Quantile(0.999),
		Max:         r.Latency.Max(),
		Mean:        r.Latency.Mean(),
	}
}

// SweepOptions configures a stepped offered-load sweep.
type SweepOptions struct {
	// Rates are the offered-load steps in requests/second, ascending.
	Rates []float64
	// RequestsPerStep fixes each step's request count. When zero,
	// StepDuration sets the count as rate·duration (minimum 50).
	RequestsPerStep int
	// StepDuration is the nominal length of each step when RequestsPerStep
	// is zero.
	StepDuration time.Duration
	// Arrival, Seed, Timeout, MaxInFlight, and Metrics configure each step's
	// Run; see Options.
	Arrival     Arrival
	Seed        uint64
	Timeout     time.Duration
	MaxInFlight int
	Metrics     *obs.Registry
	// KneeFactor is the saturation threshold: a step whose p99 exceeds
	// KneeFactor× the first step's p99 is saturated. Zero means 3.
	KneeFactor float64
	// MinAchievedRatio marks a step saturated when it completes less than
	// this fraction of its offered load. Zero means 0.9.
	MinAchievedRatio float64
	// Collector, when non-nil, receives live step progress for /debug/slo.
	Collector *Collector
}

// stepRequests resolves a step's request budget.
func (o SweepOptions) stepRequests(rate float64) int {
	if o.RequestsPerStep > 0 {
		return o.RequestsPerStep
	}
	d := o.StepDuration
	if d <= 0 {
		d = time.Second
	}
	n := int(rate * d.Seconds())
	if n < 50 {
		n = 50
	}
	return n
}

// Sweep runs one open-loop step per rate, ascending, and classifies each
// step against the saturation criteria (DetectKnee). The same seed produces
// the same arrival schedules step for step. Cancelling ctx aborts between
// (and within) steps.
func Sweep(ctx context.Context, target Target, o SweepOptions) ([]StepResult, error) {
	if len(o.Rates) == 0 {
		return nil, fmt.Errorf("loadgen: sweep needs at least one rate step")
	}
	steps := make([]StepResult, 0, len(o.Rates))
	for i, rate := range o.Rates {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		o.Collector.stepStarted(rate)
		res, err := Run(ctx, target, Options{
			Rate:        rate,
			Requests:    o.stepRequests(rate),
			Arrival:     o.Arrival,
			Seed:        o.Seed + uint64(i),
			Timeout:     o.Timeout,
			MaxInFlight: o.MaxInFlight,
			Metrics:     o.Metrics,
		})
		if err != nil {
			return steps, err
		}
		step := summarize(res)
		steps = append(steps, step)
		o.Collector.stepDone(step)
	}
	DetectKnee(steps, o.KneeFactor, o.MinAchievedRatio)
	return steps, nil
}

// DetectKnee classifies each step's Saturated flag in place and returns the
// saturation knee: the highest offered load the target sustains. A step is
// saturated when any of
//
//   - its p99 exceeds factor× the first (lightest) step's p99,
//   - it completed less than minAchieved of its offered load, or
//   - more than 1% of its requests errored or were shed,
//
// and every step after the first saturated one is saturated too (a knee is
// monotone: once the queue grows without bound, higher offered loads only
// make it worse — an accidental dip back under the latency threshold at a
// higher rate is measurement noise, not recovered capacity). The returned
// knee is the last unsaturated step's offered rate, or 0 when even the
// first step saturates. factor ≤ 0 means 3; minAchieved ≤ 0 means 0.9.
func DetectKnee(steps []StepResult, factor, minAchieved float64) float64 {
	if len(steps) == 0 {
		return 0
	}
	if factor <= 0 {
		factor = 3
	}
	if minAchieved <= 0 {
		minAchieved = 0.9
	}
	base := steps[0].P99
	knee := 0.0
	saturated := false
	for i := range steps {
		s := &steps[i]
		bad := s.Requests > 0 && float64(s.Errors+s.Shed) > 0.01*float64(s.Requests)
		slow := base > 0 && float64(s.P99) > factor*float64(base)
		starved := s.AchievedQPS < minAchieved*s.OfferedQPS
		if saturated || slow || starved || bad {
			saturated = true
			s.Saturated = true
			continue
		}
		knee = s.OfferedQPS
	}
	return knee
}

// ParseRates parses a comma-separated ascending positive QPS list, the
// CLI-flag form of SweepOptions.Rates.
func ParseRates(csv string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("loadgen: bad rate %q (want a positive QPS list like 50,100,200)", part)
		}
		if len(rates) > 0 && r <= rates[len(rates)-1] {
			return nil, fmt.Errorf("loadgen: rates must ascend, got %q", csv)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: no rates in %q", csv)
	}
	return rates, nil
}

// SLO is one declared latency target: quantile ≤ Bound at offered load
// AtQPS.
type SLO struct {
	// Quantile names the checked statistic: p50, p99, p999, mean, or max.
	Quantile string `json:"quantile"`
	// Bound is the latency ceiling.
	Bound time.Duration `json:"bound_ns"`
	// AtQPS selects the sweep step the bound applies to: the first step with
	// OfferedQPS ≥ AtQPS.
	AtQPS float64 `json:"at_qps"`
}

// ParseSLO parses "QUANTILE<=BOUND@QPS", e.g. "p99<=50ms@200" — p99 latency
// at (the first step offering at least) 200 QPS must be ≤ 50ms.
func ParseSLO(spec string) (SLO, error) {
	q, rest, ok := strings.Cut(spec, "<=")
	if !ok {
		return SLO{}, fmt.Errorf("loadgen: bad SLO %q (want QUANTILE<=BOUND@QPS, e.g. p99<=50ms@200)", spec)
	}
	boundStr, qpsStr, ok := strings.Cut(rest, "@")
	if !ok {
		return SLO{}, fmt.Errorf("loadgen: bad SLO %q: missing @QPS", spec)
	}
	switch q {
	case "p50", "p99", "p999", "mean", "max":
	default:
		return SLO{}, fmt.Errorf("loadgen: bad SLO quantile %q (want p50, p99, p999, mean, or max)", q)
	}
	bound, err := time.ParseDuration(boundStr)
	if err != nil || bound <= 0 {
		return SLO{}, fmt.Errorf("loadgen: bad SLO bound %q: %v", boundStr, err)
	}
	var qps float64
	if _, err := fmt.Sscanf(qpsStr, "%g", &qps); err != nil || qps <= 0 {
		return SLO{}, fmt.Errorf("loadgen: bad SLO rate %q", qpsStr)
	}
	return SLO{Quantile: q, Bound: bound, AtQPS: qps}, nil
}

// ParseSLOs parses a comma-separated SLO list ("" yields none).
func ParseSLOs(spec string) ([]SLO, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var slos []SLO
	for _, part := range strings.Split(spec, ",") {
		s, err := ParseSLO(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		slos = append(slos, s)
	}
	return slos, nil
}

// String renders the SLO in its parseable form.
func (s SLO) String() string {
	return fmt.Sprintf("%s<=%v@%g", s.Quantile, s.Bound, s.AtQPS)
}

// statistic extracts the SLO's statistic from a step.
func (s SLO) statistic(step StepResult) (time.Duration, error) {
	switch s.Quantile {
	case "p50":
		return step.P50, nil
	case "p99":
		return step.P99, nil
	case "p999":
		return step.P999, nil
	case "mean":
		return step.Mean, nil
	case "max":
		return step.Max, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown SLO quantile %q", s.Quantile)
	}
}

// SLOResult is one checked SLO.
type SLOResult struct {
	SLO SLO `json:"slo"`
	// MeasuredAtQPS is the offered rate of the step the bound was checked
	// against (the first step ≥ AtQPS).
	MeasuredAtQPS float64 `json:"measured_at_qps"`
	// Measured is the observed statistic at that step.
	Measured time.Duration `json:"measured_ns"`
	// OK reports whether the bound held.
	OK bool `json:"ok"`
}

// Eval checks the SLO against a sweep: the bound applies to the first step
// whose offered load is ≥ AtQPS. An error means the sweep never offered
// enough load to check the SLO at all.
func (s SLO) Eval(steps []StepResult) (SLOResult, error) {
	for _, step := range steps {
		if step.OfferedQPS >= s.AtQPS {
			m, err := s.statistic(step)
			if err != nil {
				return SLOResult{}, err
			}
			return SLOResult{SLO: s, MeasuredAtQPS: step.OfferedQPS, Measured: m, OK: m <= s.Bound}, nil
		}
	}
	return SLOResult{}, fmt.Errorf("loadgen: SLO %s needs a sweep step offering >= %g QPS", s, s.AtQPS)
}
