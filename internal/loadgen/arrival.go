package loadgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"time"
)

// Arrival produces a request schedule: Gap returns the inter-arrival time to
// the next request at the given offered rate (requests per second). The
// generator calls Gap from a single pacing goroutine, so implementations may
// keep unsynchronized state (Bursty does). Schedules are deterministic given
// the generator's seeded RNG.
type Arrival interface {
	// Name identifies the schedule in reports ("poisson", "uniform", ...).
	Name() string
	// Gap returns the time between the previous request's intended arrival
	// and the next one's.
	Gap(rng *rand.Rand, rate float64) time.Duration
}

// Uniform is the deterministic schedule: requests arrive exactly 1/rate
// apart. It isolates queueing effects from arrival-process variance.
type Uniform struct{}

// Name implements Arrival.
func (Uniform) Name() string { return "uniform" }

// Gap implements Arrival.
func (Uniform) Gap(_ *rand.Rand, rate float64) time.Duration {
	return time.Duration(float64(time.Second) / rate)
}

// Poisson is the memoryless open-loop schedule: exponentially distributed
// gaps with mean 1/rate, the standard model for aggregate arrivals from many
// independent users.
type Poisson struct{}

// Name implements Arrival.
func (Poisson) Name() string { return "poisson" }

// Gap implements Arrival.
func (Poisson) Gap(rng *rand.Rand, rate float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}

// Bursty alternates Poisson bursts at Factor× the offered rate with idle
// gaps sized so the long-run mean rate still equals the offered rate. It
// models synchronized client behavior (cache expiry, retry storms, top-of-
// the-hour cron fans) that a smooth schedule would average away.
type Bursty struct {
	// Factor is the within-burst rate multiplier (> 1). Zero means 4.
	Factor float64
	// Length is the number of requests per burst. Zero means 16.
	Length int

	left int // requests remaining in the current burst
}

// Name implements Arrival.
func (b *Bursty) Name() string { return "bursty" }

// Gap implements Arrival.
func (b *Bursty) Gap(rng *rand.Rand, rate float64) time.Duration {
	factor := b.Factor
	if factor <= 1 {
		factor = 4
	}
	length := b.Length
	if length <= 0 {
		length = 16
	}
	if b.left > 0 {
		b.left--
		return time.Duration(rng.ExpFloat64() / (rate * factor) * float64(time.Second))
	}
	b.left = length - 1
	// The idle gap restores the mean: a cycle of `length` requests must span
	// length/rate on average, and the burst itself covers length/(rate·factor).
	idle := float64(length) / rate * (1 - 1/factor)
	return time.Duration((rng.ExpFloat64()/(rate*factor) + idle) * float64(time.Second))
}

// ParseArrival maps a CLI spec to a schedule: "poisson", "uniform", or
// "bursty" (optionally "bursty:FACTORxLENGTH", e.g. "bursty:8x32").
func ParseArrival(spec string) (Arrival, error) {
	switch {
	case spec == "" || spec == "poisson":
		return Poisson{}, nil
	case spec == "uniform":
		return Uniform{}, nil
	case spec == "bursty":
		return &Bursty{}, nil
	case strings.HasPrefix(spec, "bursty:"):
		var factor float64
		var length int
		if _, err := fmt.Sscanf(spec, "bursty:%gx%d", &factor, &length); err != nil {
			return nil, fmt.Errorf("loadgen: bad bursty spec %q (want bursty:FACTORxLENGTH)", spec)
		}
		if factor <= 1 || length <= 0 || math.IsNaN(factor) {
			return nil, fmt.Errorf("loadgen: bursty factor must be > 1 and length > 0, got %q", spec)
		}
		return &Bursty{Factor: factor, Length: length}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival schedule %q (want poisson, uniform, or bursty[:FxL])", spec)
	}
}
