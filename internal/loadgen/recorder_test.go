package loadgen

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestSlotRoundTrip(t *testing.T) {
	// Every representative value must land in a bucket whose upper edge is
	// >= the value and within the documented relative error.
	values := []int64{0, 1, 2, 127, 128, 129, 191, 192, 255, 256, 1000, 4096,
		1e6, 1e9, 123456789, math.MaxInt64 / 2, math.MaxInt64}
	for _, v := range values {
		i := slot(v)
		if i < 0 || i >= numSlots {
			t.Fatalf("slot(%d) = %d out of range [0, %d)", v, i, numSlots)
		}
		up := slotUpper(i)
		if up < v {
			t.Errorf("slotUpper(slot(%d)) = %d < value", v, up)
		}
		if v > 0 && float64(up-v)/float64(v) > 0.016 {
			t.Errorf("slot(%d): upper edge %d overshoots by %.2f%%", v, up, 100*float64(up-v)/float64(v))
		}
		// Bucket edges must be consistent: the value right above this bucket's
		// edge maps to a later bucket.
		if up < math.MaxInt64 && slot(up+1) <= i {
			t.Errorf("slot(%d)=%d but slot(upper+1=%d)=%d not later", v, i, up+1, slot(up+1))
		}
	}
}

func TestSlotUpperMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numSlots; i++ {
		up := slotUpper(i)
		if up <= prev {
			t.Fatalf("slotUpper(%d) = %d <= slotUpper(%d) = %d", i, up, i-1, prev)
		}
		prev = up
	}
}

func TestRecorderQuantileVsReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	r := NewRecorder()
	n := 10000
	samples := make([]float64, n)
	for i := range samples {
		// Log-uniform over ~9 orders of magnitude, the shape of a latency
		// distribution with a heavy tail. Integer nanoseconds, matching what
		// the recorder actually stores.
		v := math.Floor(math.Exp(rng.Float64() * math.Log(1e9)))
		samples[i] = v
		r.Record(time.Duration(v))
	}
	sort.Float64s(samples)
	if r.Count() != int64(n) {
		t.Fatalf("count = %d, want %d", r.Count(), n)
	}
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0} {
		rank := int(math.Ceil(q * float64(n)))
		if rank < 1 {
			rank = 1
		}
		want := samples[rank-1]
		got := float64(r.Quantile(q))
		// The recorder reports the containing bucket's upper edge, so it may
		// exceed the true sample by the quantization error but never undershoot
		// beyond it.
		if got < want*(1-0.016) || got > want*(1+0.017) {
			t.Errorf("Quantile(%g) = %g, reference %g (%.2f%% off)", q, got, want, 100*(got-want)/want)
		}
	}
	if r.Quantile(1.0) > time.Duration(samples[n-1])+1 {
		t.Errorf("Quantile(1) = %v beyond observed max %g", r.Quantile(1.0), samples[n-1])
	}
}

func TestRecorderEmptyAndClamp(t *testing.T) {
	r := NewRecorder()
	if r.Quantile(0.5) != 0 || r.Min() != 0 || r.Max() != 0 || r.Mean() != 0 {
		t.Fatalf("empty recorder not all-zero: %v", r)
	}
	r.Record(-5 * time.Second)
	if r.Count() != 1 || r.Min() != 0 || r.Max() != 0 {
		t.Fatalf("negative sample should clamp to zero: %v", r)
	}
}

func TestRecorderMinMaxMean(t *testing.T) {
	r := NewRecorder()
	for _, d := range []time.Duration{10, 20, 30} {
		r.Record(d * time.Millisecond)
	}
	if r.Min() != 10*time.Millisecond || r.Max() != 30*time.Millisecond {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", r.Mean())
	}
}

func TestRecorderMerge(t *testing.T) {
	a, b, both := NewRecorder(), NewRecorder(), NewRecorder()
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int64N(int64(time.Second)))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Count() != both.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), both.Count())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("Quantile(%g): merged %v != direct %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	if a.Min() != both.Min() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Errorf("merged summary %v != direct %v", a, both)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 1))
			for i := 0; i < per; i++ {
				r.Record(time.Duration(rng.Int64N(int64(time.Minute))))
			}
		}(uint64(w))
	}
	wg.Wait()
	if r.Count() != workers*per {
		t.Fatalf("count = %d, want %d", r.Count(), workers*per)
	}
}
