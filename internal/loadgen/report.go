package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/scec/scec/internal/obs/flight"
)

// ReportVersion identifies the results/load.json schema. Bump it when a
// field changes meaning; additive fields keep the version.
const ReportVersion = 1

// Scenario is one swept system under load: a latency-vs-offered-load curve,
// the detected knee, and the declared SLOs checked against it.
type Scenario struct {
	// Name labels the scenario ("fleet-3dev", "sim-1000dev-churn", ...).
	Name string `json:"name"`
	// Backend is the execution substrate (fleet, local, sim).
	Backend string `json:"backend"`
	// Clock is "wall" for real-socket runs, "virtual" for simulator runs.
	Clock string `json:"clock"`
	// Arrival names the schedule that generated the load.
	Arrival string `json:"arrival"`
	// Devices is the device count behind the scenario.
	Devices int `json:"devices"`
	// ChurnEvents and Outages count the virtual scenario's churn activity
	// (zero for real-socket runs without churn).
	ChurnEvents int `json:"churn_events,omitempty"`
	Outages     int `json:"outages,omitempty"`
	// Steps is the latency-vs-load curve, ascending offered load.
	Steps []StepResult `json:"steps"`
	// KneeQPS is the saturation knee: the highest offered load sustained
	// (see DetectKnee).
	KneeQPS float64 `json:"knee_qps"`
	// SLOs holds the declared-target checks.
	SLOs []SLOResult `json:"slos,omitempty"`
}

// CheckSLOs evaluates the declared SLOs against the scenario's curve,
// records the results, and returns the violations (nil when all hold).
func (s *Scenario) CheckSLOs(slos []SLO) error {
	var bad []string
	for _, slo := range slos {
		res, err := slo.Eval(s.Steps)
		if err != nil {
			return err
		}
		s.SLOs = append(s.SLOs, res)
		if !res.OK {
			bad = append(bad, fmt.Sprintf("%s: measured %v at %g QPS", slo, res.Measured, res.MeasuredAtQPS))
			flight.Default().PublishDetail(flight.KindSLOBreach, s.Name, slo.String(), int64(res.MeasuredAtQPS), 0)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("loadgen: scenario %s violates %d SLO(s): %s", s.Name, len(bad), strings.Join(bad, "; "))
	}
	return nil
}

// WriteText renders the scenario's curve as a plain console table with the
// knee and SLO verdicts — the CLI-facing sibling of Report.WriteMarkdown.
func (s *Scenario) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%s: knee at %.0f QPS\n", s.Name, s.KneeQPS)
	fmt.Fprintf(w, "  offered   achieved   p50        p99        p999       shed saturated\n")
	for _, st := range s.Steps {
		sat := ""
		if st.Saturated {
			sat = "yes"
		}
		fmt.Fprintf(w, "  %-9.0f %-10.1f %-10v %-10v %-10v %-4d %s\n",
			st.OfferedQPS, st.AchievedQPS,
			st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond), st.P999.Round(time.Microsecond),
			st.Shed, sat)
	}
	for _, res := range s.SLOs {
		verdict := "OK"
		if !res.OK {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "  SLO %s: measured %v at %g QPS — %s\n",
			res.SLO, res.Measured.Round(time.Microsecond), res.MeasuredAtQPS, verdict)
	}
}

// Report is the results/load.json document: every scenario swept by one
// harness invocation.
type Report struct {
	Version   int        `json:"version"`
	Scenarios []Scenario `json:"scenarios"`
}

// Check returns an error naming every SLO violation recorded in the report.
func (r *Report) Check() error {
	var errs []error
	for _, sc := range r.Scenarios {
		for _, res := range sc.SLOs {
			if !res.OK {
				errs = append(errs, fmt.Errorf("scenario %s: SLO %s violated: measured %v at %g QPS",
					sc.Name, res.SLO, res.Measured, res.MeasuredAtQPS))
			}
		}
	}
	return errors.Join(errs...)
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ms renders a duration as fractional milliseconds for the markdown tables.
func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }

// WriteMarkdown renders the human-readable companion to the JSON report:
// one latency-vs-load table per scenario with the knee and SLO verdicts.
func (r *Report) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# Load sweep — latency vs offered load\n\n")
	fmt.Fprintf(w, "Open-loop, coordinated-omission-safe measurement: every latency is taken\n")
	fmt.Fprintf(w, "against the request's *intended* arrival time from the arrival schedule, so\n")
	fmt.Fprintf(w, "queue delay behind a stall is counted instead of omitted.\n")
	for _, sc := range r.Scenarios {
		fmt.Fprintf(w, "\n## %s\n\n", sc.Name)
		fmt.Fprintf(w, "backend=%s clock=%s arrival=%s devices=%d", sc.Backend, sc.Clock, sc.Arrival, sc.Devices)
		if sc.ChurnEvents > 0 {
			fmt.Fprintf(w, " churn-events=%d outages=%d", sc.ChurnEvents, sc.Outages)
		}
		fmt.Fprintf(w, "\n\n")
		fmt.Fprintf(w, "| offered QPS | achieved QPS | requests | errors | shed | p50 ms | p99 ms | p999 ms | max ms | saturated |\n")
		fmt.Fprintf(w, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|:---|\n")
		for _, st := range sc.Steps {
			sat := ""
			if st.Saturated {
				sat = "yes"
			}
			fmt.Fprintf(w, "| %.0f | %.1f | %d | %d | %d | %s | %s | %s | %s | %s |\n",
				st.OfferedQPS, st.AchievedQPS, st.Requests, st.Errors, st.Shed,
				ms(st.P50), ms(st.P99), ms(st.P999), ms(st.Max), sat)
		}
		fmt.Fprintf(w, "\nSaturation knee: **%.0f QPS** (highest sustained offered load).\n", sc.KneeQPS)
		for _, res := range sc.SLOs {
			verdict := "OK"
			if !res.OK {
				verdict = "VIOLATED"
			}
			fmt.Fprintf(w, "- SLO `%s`: measured %v at %g QPS — **%s**\n",
				res.SLO, res.Measured.Round(time.Microsecond), res.MeasuredAtQPS, verdict)
		}
	}
	return nil
}

// WriteFiles writes the JSON report to jsonPath and, when mdPath is
// non-empty, the markdown companion to mdPath.
func (r *Report) WriteFiles(jsonPath, mdPath string) error {
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		werr := r.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if mdPath != "" {
		f, err := os.Create(mdPath)
		if err != nil {
			return err
		}
		werr := r.WriteMarkdown(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}
