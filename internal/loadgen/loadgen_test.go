package loadgen

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scec/scec/internal/obs"
)

func TestRunBasic(t *testing.T) {
	reg := obs.New()
	var calls atomic.Int64
	res, err := Run(context.Background(), func(ctx context.Context) error {
		calls.Add(1)
		return nil
	}, Options{Rate: 2000, Requests: 200, Arrival: Uniform{}, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 || calls.Load() != 200 {
		t.Fatalf("requests = %d, calls = %d, want 200", res.Requests, calls.Load())
	}
	if res.Errors != 0 || res.Shed != 0 {
		t.Fatalf("unexpected errors/shed: %+v", res)
	}
	if res.Latency.Count() != 200 {
		t.Fatalf("latency samples = %d, want 200", res.Latency.Count())
	}
	if res.Achieved <= 0 {
		t.Fatalf("achieved = %g", res.Achieved)
	}
}

func TestRunErrorsCounted(t *testing.T) {
	boom := errors.New("boom")
	var n atomic.Int64
	res, err := Run(context.Background(), func(ctx context.Context) error {
		if n.Add(1)%2 == 0 {
			return boom
		}
		return nil
	}, Options{Rate: 5000, Requests: 100, Arrival: Uniform{}, Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 50 {
		t.Fatalf("errors = %d, want 50", res.Errors)
	}
	if !errors.Is(res.FirstErr, boom) {
		t.Fatalf("FirstErr = %v", res.FirstErr)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	target := func(ctx context.Context) error {
		started.Add(1)
		<-ctx.Done()
		return ctx.Err()
	}
	done := make(chan Result, 1)
	go func() {
		// Slow schedule: 10 QPS for 1000 requests would take 100s uncancelled.
		res, _ := Run(ctx, target, Options{Rate: 10, Requests: 1000, Arrival: Uniform{}, Metrics: obs.New()})
		done <- res
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Requests >= 1000 {
			t.Fatalf("cancelled run still issued all %d requests", res.Requests)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return promptly after cancellation")
	}
}

func TestRunShedsAtMaxInFlight(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	res, err := Run(context.Background(), func(ctx context.Context) error {
		select {
		case <-block:
		case <-time.After(2 * time.Second):
		}
		return nil
	}, Options{
		Rate:        2000,
		Requests:    50,
		Arrival:     Uniform{},
		MaxInFlight: 4,
		Metrics:     obs.New(),
	})
	once.Do(func() { close(block) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("expected shed requests with MaxInFlight=4 and a blocked target: %+v", res)
	}
	// Shed samples still land in the distribution: counts stay exact.
	if res.Latency.Count() != int64(res.Requests) {
		t.Fatalf("latency samples %d != issued %d (shed must record queue delay)", res.Latency.Count(), res.Requests)
	}
}

// TestCoordinatedOmissionGap is the harness's reason to exist: the same
// stalling target measured open-loop and closed-loop. The target serves
// instantly except for one long stall. The closed loop's single worker
// simply doesn't send during the stall, so only one sample is slow; the
// open-loop schedule keeps "arriving" and every request intended during the
// stall records its full queue delay. The open-loop p99 must therefore
// dwarf the closed-loop p99.
func TestCoordinatedOmissionGap(t *testing.T) {
	const stall = 300 * time.Millisecond
	// A single-server target: requests serialize on the mutex, so everything
	// that arrives while one request stalls queues behind it — the classic
	// setup coordinated omission hides.
	mkTarget := func() Target {
		var mu sync.Mutex
		var n int
		return func(ctx context.Context) error {
			mu.Lock()
			defer mu.Unlock()
			n++
			if n == 20 {
				time.Sleep(stall)
			}
			return nil
		}
	}

	// Closed loop: one worker, measured from actual send time.
	closed, err := RunClosed(context.Background(), mkTarget(), 1, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Open loop at 500 QPS: ~150 requests are intended during the stall.
	open, err := Run(context.Background(), mkTarget(), Options{
		Rate:     500,
		Requests: 200,
		Arrival:  Uniform{},
		Metrics:  obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}

	openP99 := open.Latency.Quantile(0.99)
	closedP99 := closed.Latency.Quantile(0.99)
	t.Logf("open-loop:   %v", open.Latency)
	t.Logf("closed-loop: %v", closed.Latency)
	if closedP99 >= stall/2 {
		t.Fatalf("closed-loop p99 %v should hide the stall (only 1/200 samples slow)", closedP99)
	}
	if openP99 < stall/2 {
		t.Fatalf("open-loop p99 %v must surface the stall's queue delay", openP99)
	}
	if openP99 < 10*closedP99 {
		t.Fatalf("CO gap too small: open p99 %v vs closed p99 %v", openP99, closedP99)
	}
}

func TestRunClosedValidation(t *testing.T) {
	if _, err := RunClosed(context.Background(), nil, 1, 1, 0); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := RunClosed(context.Background(), func(context.Context) error { return nil }, 0, 1, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestRunValidation(t *testing.T) {
	ok := func(context.Context) error { return nil }
	if _, err := Run(context.Background(), ok, Options{Rate: 0, Requests: 1}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(context.Background(), ok, Options{Rate: 1, Requests: 0}); err == nil {
		t.Fatal("zero requests accepted")
	}
	if _, err := Run(context.Background(), nil, Options{Rate: 1, Requests: 1}); err == nil {
		t.Fatal("nil target accepted")
	}
}

func TestRunTimeoutAppliesPerRequest(t *testing.T) {
	res, err := Run(context.Background(), func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}, Options{
		Rate:     1000,
		Requests: 20,
		Arrival:  Uniform{},
		Timeout:  20 * time.Millisecond,
		Metrics:  obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 20 {
		t.Fatalf("errors = %d, want 20 (every request must hit its deadline)", res.Errors)
	}
	if !errors.Is(res.FirstErr, context.DeadlineExceeded) {
		t.Fatalf("FirstErr = %v, want deadline exceeded", res.FirstErr)
	}
}
