// Package loadgen is the heavy-traffic SLO harness: an open-loop load
// generator (Poisson, uniform, and bursty arrival schedules at a configured
// offered QPS) that drives any request function — a Served fleet handle, a
// local deployment, or a raw closure — and measures latency against each
// request's *intended* arrival time, so the numbers stay honest when the
// system under test stalls (coordinated-omission-safe measurement). On top
// of the generator sit stepped offered-load sweeps, saturation-knee
// detection, declared-SLO checking, and a virtual-clock scenario engine that
// scales the same sweeps to thousands of simulated devices with churn.
//
// Coordinated omission, briefly: a closed-loop harness (fixed worker pool,
// next request issued only after the previous returns) stops sending while
// the target stalls, so a one-second hiccup contributes one slow sample
// instead of the hundreds of slow requests real users would have
// experienced. The open-loop generator here derives every request's send
// time from the arrival schedule alone and timestamps latency from that
// intended time, so queue delay accrued behind a stall is measured, not
// omitted. RunClosed implements the flawed loop deliberately, as the
// comparison baseline the tests (and EXPERIMENTS.md) use to show the gap.
package loadgen

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Recorder layout: values (nanoseconds) below 2^subBits land in one exact
// linear bucket each; every octave [2^(e-1), 2^e) above is split into
// 2^(subBits-1) equal-width sub-buckets, bounding the relative quantization
// error by 2^(1-subBits) (≈1.6% for subBits = 7). Counts are exact — the
// quantization affects only the reported value, never which sample is
// counted — which is what "exact-count quantiles" means here.
const (
	subBits   = 7
	subCount  = 1 << subBits  // exact buckets below this value
	halfCount = subCount >> 1 // sub-buckets per octave above
	// numOctave covers every positive int64 (bit lengths subBits+1 .. 63).
	numOctave = 63 - subBits
	numSlots  = subCount + numOctave*halfCount
)

// Recorder is a high-resolution log-bucketed latency histogram. All methods
// are safe for concurrent use; recording is a single atomic add on the hot
// path. The zero value is not usable; call NewRecorder.
type Recorder struct {
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64
	max    atomic.Int64
}

// NewRecorder returns an empty recorder covering 1ns to ~292 years with
// ≤1.6% relative value error.
func NewRecorder() *Recorder {
	r := &Recorder{counts: make([]atomic.Int64, numSlots)}
	r.min.Store(math.MaxInt64)
	return r
}

// slot maps a non-negative nanosecond value to its bucket index.
func slot(v int64) int {
	u := uint64(v)
	e := bits.Len64(u)
	if e <= subBits {
		return int(u)
	}
	w := (u - 1<<(e-1)) >> (e - subBits)
	return subCount + (e-subBits-1)*halfCount + int(w)
}

// slotUpper returns the inclusive upper edge (in nanoseconds) of bucket i —
// the conservative value quantiles report.
func slotUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	o := (i - subCount) / halfCount
	w := (i - subCount) % halfCount
	e := o + subBits + 1
	width := int64(1) << (e - subBits)
	return int64(1)<<(e-1) + int64(w+1)*width - 1
}

// Record adds one latency sample. Negative durations clamp to zero.
func (r *Recorder) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	r.counts[slot(v)].Add(1)
	r.count.Add(1)
	r.sum.Add(v)
	for {
		old := r.min.Load()
		if v >= old || r.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := r.max.Load()
		if v <= old || r.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (r *Recorder) Count() int64 { return r.count.Load() }

// Min returns the smallest recorded sample (0 when empty).
func (r *Recorder) Min() time.Duration {
	if r.count.Load() == 0 {
		return 0
	}
	return time.Duration(r.min.Load())
}

// Max returns the largest recorded sample (0 when empty).
func (r *Recorder) Max() time.Duration { return time.Duration(r.max.Load()) }

// Mean returns the arithmetic mean of the recorded samples (0 when empty).
func (r *Recorder) Mean() time.Duration {
	n := r.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(r.sum.Load() / n)
}

// Quantile returns the q-quantile (q in [0, 1]) of the recorded samples:
// the value v such that at least ⌈q·count⌉ samples are ≤ v, reported as the
// containing bucket's upper edge (within 1.6% of the true sample). Returns 0
// when the recorder is empty.
func (r *Recorder) Quantile(q float64) time.Duration {
	n := r.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range r.counts {
		cum += r.counts[i].Load()
		if cum >= rank {
			up := slotUpper(i)
			// Never report beyond the observed extremes: the top bucket's
			// edge can overshoot the true maximum by the quantization width.
			if mx := r.max.Load(); up > mx {
				up = mx
			}
			return time.Duration(up)
		}
	}
	return time.Duration(r.max.Load())
}

// Merge folds other's samples into r. Both recorders may keep recording
// concurrently; the merged view is then a best-effort snapshot.
func (r *Recorder) Merge(other *Recorder) {
	if other == nil {
		return
	}
	var added int64
	for i := range other.counts {
		if c := other.counts[i].Load(); c > 0 {
			r.counts[i].Add(c)
			added += c
		}
	}
	if added == 0 {
		return
	}
	r.count.Add(added)
	r.sum.Add(other.sum.Load())
	for {
		om, cm := other.min.Load(), r.min.Load()
		if om >= cm || r.min.CompareAndSwap(cm, om) {
			break
		}
	}
	for {
		om, cm := other.max.Load(), r.max.Load()
		if om <= cm || r.max.CompareAndSwap(cm, om) {
			break
		}
	}
}

// String summarizes the recorder for logs and test failures.
func (r *Recorder) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		r.Count(), r.Quantile(0.50), r.Quantile(0.99), r.Quantile(0.999), r.Max())
}
