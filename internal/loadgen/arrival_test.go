package loadgen

import (
	"math/rand/v2"
	"testing"
	"time"
)

// meanGap averages n gaps from a fresh schedule.
func meanGap(t *testing.T, a Arrival, rate float64, n int) float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 42))
	var total time.Duration
	for i := 0; i < n; i++ {
		g := a.Gap(rng, rate)
		if g < 0 {
			t.Fatalf("%s: negative gap %v", a.Name(), g)
		}
		total += g
	}
	return total.Seconds() / float64(n)
}

func TestArrivalMeanRate(t *testing.T) {
	const rate = 200.0
	want := 1 / rate
	for _, a := range []Arrival{Uniform{}, Poisson{}, &Bursty{}, &Bursty{Factor: 8, Length: 32}} {
		got := meanGap(t, a, rate, 20000)
		if got < want*0.95 || got > want*1.05 {
			t.Errorf("%s: mean gap %.6fs, want ~%.6fs (mean-rate must be preserved)", a.Name(), got, want)
		}
	}
}

func TestUniformExact(t *testing.T) {
	g := Uniform{}.Gap(nil, 100)
	if g != 10*time.Millisecond {
		t.Fatalf("uniform gap at 100 QPS = %v, want 10ms", g)
	}
}

func TestArrivalDeterministic(t *testing.T) {
	for _, mk := range []func() Arrival{
		func() Arrival { return Poisson{} },
		func() Arrival { return &Bursty{} },
	} {
		a, b := mk(), mk()
		rngA := rand.New(rand.NewPCG(5, 5))
		rngB := rand.New(rand.NewPCG(5, 5))
		for i := 0; i < 100; i++ {
			if ga, gb := a.Gap(rngA, 50), b.Gap(rngB, 50); ga != gb {
				t.Fatalf("%s: gap %d differs under identical seeds: %v vs %v", a.Name(), i, ga, gb)
			}
		}
	}
}

func TestBurstyShape(t *testing.T) {
	// Within a burst, gaps come at factor× the rate; the burst-opening gap
	// includes the idle makeup and must dominate.
	b := &Bursty{Factor: 4, Length: 16}
	rng := rand.New(rand.NewPCG(1, 1))
	first := b.Gap(rng, 100) // opens the burst: idle + first intra-burst gap
	var intra time.Duration
	for i := 0; i < 15; i++ {
		intra += b.Gap(rng, 100)
	}
	if first < intra/4 {
		t.Errorf("burst-opening gap %v should carry the idle makeup (intra total %v)", first, intra)
	}
}

func TestParseArrival(t *testing.T) {
	cases := []struct {
		spec string
		name string
		ok   bool
	}{
		{"", "poisson", true},
		{"poisson", "poisson", true},
		{"uniform", "uniform", true},
		{"bursty", "bursty", true},
		{"bursty:8x32", "bursty", true},
		{"bursty:1x32", "", false},
		{"bursty:8x0", "", false},
		{"bursty:nonsense", "", false},
		{"weibull", "", false},
	}
	for _, c := range cases {
		a, err := ParseArrival(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("ParseArrival(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && a.Name() != c.name {
			t.Errorf("ParseArrival(%q).Name() = %q, want %q", c.spec, a.Name(), c.name)
		}
	}
	a, err := ParseArrival("bursty:8x32")
	if err != nil {
		t.Fatal(err)
	}
	if b := a.(*Bursty); b.Factor != 8 || b.Length != 32 {
		t.Fatalf("bursty:8x32 parsed as %+v", b)
	}
}
