package alloc

// istar computes i*, the maximum i ∈ {2, …, k} satisfying
//
//	Σ_{j=1}^{i-1} c_j ≥ (i-2)·c_i
//
// over costs sorted ascending (§III). Lemma 3 proves the satisfying set is
// the prefix {2, …, i*}, so a single forward scan suffices and the first
// violation pins i*. The scan is the O(k) heart of Algorithm 1.
func istar(sorted []float64) int {
	k := len(sorted)
	prefix := sorted[0] // Σ_{j=1}^{i-1} c_j for i = 2
	star := 2
	for i := 3; i <= k; i++ {
		prefix += sorted[i-2] // now Σ of the first i-1 costs
		if prefix < float64(i-2)*sorted[i-1] {
			break
		}
		star = i
	}
	return star
}

// IStar exposes the i* computation on an unsorted instance, mostly for tests
// and diagnostics. It returns an error if the instance is invalid.
func IStar(in Instance) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	return istar(sortDevices(in).costs), nil
}

// LowerBound returns c^L = m/(i*−1) · Σ_{j=1}^{i*} c_j, the Theorem 1 lower
// bound on the optimal MCSCEC cost. Corollary 1 shows it is attained exactly
// when (i*−1) divides m.
func LowerBound(in Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	dev := sortDevices(in)
	star := istar(dev.costs)
	sum := 0.0
	for j := 0; j < star; j++ {
		sum += dev.costs[j]
	}
	return float64(in.M) / float64(star-1) * sum, nil
}
