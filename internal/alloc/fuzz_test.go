package alloc

import (
	"math"
	"testing"
)

// FuzzTA1TA2Agreement feeds arbitrary instances to both optimal algorithms
// and demands the Theorems 4–5 guarantees: identical minimal cost, at or
// above the Theorem 1 lower bound, with structurally valid plans.
func FuzzTA1TA2Agreement(fz *testing.F) {
	fz.Add(uint8(5), []byte{1, 2, 3})
	fz.Add(uint8(100), []byte{5, 5, 5, 5, 5})
	fz.Add(uint8(1), []byte{255, 1})
	fz.Add(uint8(37), []byte{9, 3, 200, 14, 77, 2, 2})
	fz.Fuzz(func(t *testing.T, mRaw uint8, costBytes []byte) {
		m := 1 + int(mRaw)%100
		if len(costBytes) < 2 {
			costBytes = append(costBytes, 1, 1)
		}
		if len(costBytes) > 12 {
			costBytes = costBytes[:12]
		}
		costs := make([]float64, len(costBytes))
		for j, b := range costBytes {
			costs[j] = 0.5 + float64(b) // strictly positive
		}
		in := Instance{M: m, Costs: costs}

		p1, err := TA1(in)
		if err != nil {
			t.Fatalf("TA1: %v", err)
		}
		p2, err := TA2(in)
		if err != nil {
			t.Fatalf("TA2: %v", err)
		}
		if math.Abs(p1.Cost-p2.Cost) > 1e-6 {
			t.Fatalf("TA1 cost %g != TA2 cost %g (m=%d costs=%v)", p1.Cost, p2.Cost, m, costs)
		}
		lb, err := LowerBound(in)
		if err != nil {
			t.Fatal(err)
		}
		if p1.Cost < lb-1e-6 {
			t.Fatalf("cost %g below lower bound %g", p1.Cost, lb)
		}
		if err := Verify(in, p1); err != nil {
			t.Fatalf("TA1 plan invalid: %v", err)
		}
		if err := Verify(in, p2); err != nil {
			t.Fatalf("TA2 plan invalid: %v", err)
		}
	})
}
