package alloc

// TA1 runs Task Allocation Algorithm 1 (Algorithm 1, §IV-A) in O(k):
//
//  1. Compute i* by the linear scan justified by Lemma 3.
//  2. If (i*−1) divides m, take r = m/(i*−1); Corollary 1 shows this attains
//     the lower bound exactly.
//  3. Otherwise r is one of ⌊m/(i*−1)⌋ and ⌈m/(i*−1)⌉ — the floor is only
//     admissible when it respects Theorem 2's range r ≥ ⌈m/(k−1)⌉ — and the
//     cheaper of the two (floor on ties, matching c_E ≤ c_F in the paper)
//     wins.
//
// The returned plan has the Lemma 2 shape: the i−1 cheapest devices carry r
// rows each and device i carries m − (i−2)·r rows, with i = ⌈(m+r)/r⌉.
func TA1(in Instance) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	dev := sortDevices(in)
	m, k := in.M, in.K()
	star := istar(dev.costs)

	var r int
	switch {
	case m%(star-1) == 0:
		r = m / (star - 1)
	case m/(star-1) < ceilDiv(m, k-1):
		// The floor candidate violates Theorem 2's lower limit on r, so only
		// the ceiling candidate remains.
		r = ceilDiv(m, star-1)
	default:
		prefix := prefixSums(dev.costs)
		rE, rF := m/(star-1), ceilDiv(m, star-1)
		_, cE := shapeCost(m, rE, prefix, dev.costs)
		_, cF := shapeCost(m, rF, prefix, dev.costs)
		if cE <= cF {
			r = rE
		} else {
			r = rF
		}
	}
	return buildPlan("TA1", m, r, dev), nil
}
