package alloc

import (
	"math/rand/v2"
)

// TAWithoutSecurity is the TAw/oS baseline of §V: the m data rows are spread
// equally over the i* cheapest devices with no random vectors at all. It is
// cheaper than any secure plan (it pays no redundancy) but offers no
// confidentiality; the experiments use it to price the security overhead.
func TAWithoutSecurity(in Instance) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	dev := sortDevices(in)
	m := in.M
	star := istar(dev.costs)
	if star > m {
		// Fewer rows than devices: each of the m cheapest devices takes one.
		star = m
	}
	base, extra := m/star, m%star
	assignments := make([]Assignment, 0, star)
	total := 0.0
	for pos := 0; pos < star; pos++ {
		rows := base
		if pos < extra {
			// The remainder lands on the cheapest devices.
			rows++
		}
		assignments = append(assignments, Assignment{Device: dev.order[pos], Rows: rows})
		total += float64(rows) * dev.costs[pos]
	}
	return Plan{Algorithm: "TAw/oS", R: 0, I: star, Assignments: assignments, Cost: total}, nil
}

// MaxNode is the baseline that spreads the task as widely as possible:
// r = ⌈m/(k−1)⌉, the smallest value Theorem 2 admits, which maximizes the
// number of participating devices i = ⌈(m+r)/r⌉.
func MaxNode(in Instance) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	dev := sortDevices(in)
	p := buildPlan("MaxNode", in.M, ceilDiv(in.M, in.K()-1), dev)
	return p, nil
}

// MinNode is the baseline that concentrates the task: r = m, its largest
// admissible value, so only the two cheapest devices participate (i = 2).
func MinNode(in Instance) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	dev := sortDevices(in)
	p := buildPlan("MinNode", in.M, in.M, dev)
	return p, nil
}

// RNode is the randomized baseline: r drawn uniformly from Theorem 2's range
// [⌈m/(k−1)⌉, m], then the Lemma 2 shape.
func RNode(in Instance, rng *rand.Rand) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	dev := sortDevices(in)
	lo := ceilDiv(in.M, in.K()-1)
	r := lo + rng.IntN(in.M-lo+1)
	p := buildPlan("RNode", in.M, r, dev)
	return p, nil
}
