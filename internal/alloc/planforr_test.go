package alloc

import (
	"math"
	"testing"
)

func TestPlanForRMatchesTA2Minimum(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 60, 10)
		opt := mustPlan(t, TA2, in)
		lo := ceilDiv(in.M, in.K()-1)
		best := math.Inf(1)
		for r := lo; r <= in.M; r++ {
			p, err := PlanForR(in, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(in, p); err != nil {
				t.Fatalf("r=%d: %v", r, err)
			}
			if p.Cost < best {
				best = p.Cost
			}
		}
		if math.Abs(best-opt.Cost) > 1e-6 {
			t.Fatalf("min over PlanForR = %g, TA2 = %g (m=%d costs=%v)", best, opt.Cost, in.M, in.Costs)
		}
	}
}

func TestPlanForRRangeValidation(t *testing.T) {
	in := Instance{M: 10, Costs: []float64{1, 2, 3}}
	lo := ceilDiv(in.M, in.K()-1)
	if _, err := PlanForR(in, lo-1); err == nil {
		t.Fatal("r below Theorem 2's range should be rejected")
	}
	if _, err := PlanForR(in, in.M+1); err == nil {
		t.Fatal("r above m should be rejected")
	}
	if _, err := PlanForR(Instance{M: 0, Costs: []float64{1, 2}}, 1); err == nil {
		t.Fatal("invalid instance should be rejected")
	}
}

// TestCostCurveUnimodality verifies the shape result inside Theorem 4's
// proof: c^(r) is non-increasing for r ≤ ⌊m/(i*−1)⌋ and non-decreasing for
// r ≥ ⌈m/(i*−1)⌉.
func TestCostCurveUnimodality(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 300; trial++ {
		in := randomInstance(rng, 50, 10)
		star, err := IStar(in)
		if err != nil {
			t.Fatal(err)
		}
		lo := ceilDiv(in.M, in.K()-1)
		floorR := in.M / (star - 1)
		ceilR := ceilDiv(in.M, star-1)

		cost := func(r int) float64 {
			p, err := PlanForR(in, r)
			if err != nil {
				t.Fatalf("r=%d: %v", r, err)
			}
			return p.Cost
		}
		const eps = 1e-9
		for r := lo; r < in.M; r++ {
			c0, c1 := cost(r), cost(r+1)
			if r+1 <= floorR && c1 > c0+eps {
				t.Fatalf("c^(r) increased from r=%d (%g) to r=%d (%g) before the optimum (floor=%d, m=%d costs=%v)",
					r, c0, r+1, c1, floorR, in.M, in.Costs)
			}
			if r >= ceilR && c1 < c0-eps {
				t.Fatalf("c^(r) decreased from r=%d (%g) to r=%d (%g) after the optimum (ceil=%d, m=%d costs=%v)",
					r, c0, r+1, c1, ceilR, in.M, in.Costs)
			}
		}
	}
}
