package alloc

import (
	"math/rand/v2"
	"testing"
)

// TestTACollusionReducesToTA1 pins the t = 1 degeneration: the coalition
// sweep must match TA1's optimal cost exactly (the shapes coincide, since
// ⌈m/w⌉ + 1 = ⌈(m+w)/w⌉ for every width w = r).
func TestTACollusionReducesToTA1(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 4))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.IntN(60)
		k := 2 + rng.IntN(10)
		costs := make([]float64, k)
		for j := range costs {
			costs[j] = 0.5 + rng.Float64()*4
		}
		in := Instance{M: m, Costs: costs}
		opt, err := TA1(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TACollusion(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d := got.Cost - opt.Cost; d > 1e-9 || d < -1e-9 {
			t.Fatalf("trial %d (m=%d k=%d): TACollusion(1) cost %g, TA1 cost %g", trial, m, k, got.Cost, opt.Cost)
		}
		if err := VerifyT(in, got, 1); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTACollusionPlansVerify checks random instances across thresholds: every
// returned plan must satisfy the coalition-aware verifier and use r = t·w
// random rows for some width w.
func TestTACollusionPlansVerify(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 28))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.IntN(50)
		tc := 1 + rng.IntN(3)
		k := tc + 1 + rng.IntN(12)
		costs := make([]float64, k)
		for j := range costs {
			costs[j] = 0.25 + rng.Float64()*5
		}
		in := Instance{M: m, Costs: costs}
		p, err := TACollusion(in, tc)
		if err != nil {
			t.Fatalf("trial %d (m=%d k=%d t=%d): %v", trial, m, k, tc, err)
		}
		if p.Algorithm != "TAt" {
			t.Fatalf("plan algorithm %q", p.Algorithm)
		}
		if p.R%tc != 0 {
			t.Fatalf("r = %d is not a multiple of t = %d", p.R, tc)
		}
		if err := VerifyT(in, p, tc); err != nil {
			t.Fatalf("trial %d: %v\nplan: %+v", trial, err, p)
		}
	}
}

// TestTACollusionCostMonotoneInT: a stronger threat model can never be
// cheaper — for a fixed fleet the optimal cost is non-decreasing in t.
func TestTACollusionCostMonotoneInT(t *testing.T) {
	costs := []float64{0.7, 1.1, 1.9, 2.4, 3.0, 3.3, 4.1, 5.2}
	in := Instance{M: 24, Costs: costs}
	prev := -1.0
	for tc := 1; tc <= 4; tc++ {
		p, err := TACollusion(in, tc)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost < prev {
			t.Fatalf("t=%d costs %g, cheaper than t=%d at %g", tc, p.Cost, tc-1, prev)
		}
		prev = p.Cost
	}
}

// TestTACollusionFleetTooSmall: hosting a t-collusion deployment needs at
// least t+1 devices.
func TestTACollusionFleetTooSmall(t *testing.T) {
	in := Instance{M: 10, Costs: []float64{1, 2}}
	if _, err := TACollusion(in, 2); err == nil {
		t.Fatal("expected error: 2 devices cannot host t = 2")
	}
	if _, err := TACollusion(in, 0); err == nil {
		t.Fatal("expected error for t = 0")
	}
}

// TestVerifyTCatchesCoalitionViolations: plans that satisfy the classic
// per-device cap but let a 2-coalition exceed r must be rejected at t = 2.
func TestVerifyTCatchesCoalitionViolations(t *testing.T) {
	in := Instance{M: 4, Costs: []float64{1, 2, 3}}
	// r = 2: each device holds 2 ≤ r rows (classic Lemma 1 holds), but any
	// two devices pool 4 > r rows.
	p := Plan{
		Algorithm: "TAt", R: 2, I: 3,
		Assignments: []Assignment{{Device: 0, Rows: 2}, {Device: 1, Rows: 2}, {Device: 2, Rows: 2}},
		Cost:        1*2 + 2*2 + 3*2,
	}
	if err := VerifyT(in, p, 1); err != nil {
		t.Fatalf("classic verification should pass: %v", err)
	}
	if err := VerifyT(in, p, 2); err == nil {
		t.Fatal("expected a coalition capacity violation at t = 2")
	}
}

// TestLargestSum pins the helper on short lists and t beyond the count.
func TestLargestSum(t *testing.T) {
	if got := largestSum([]int{3, 9, 1, 5}, 2); got != 14 {
		t.Fatalf("largestSum = %d, want 14", got)
	}
	if got := largestSum([]int{2, 2}, 5); got != 4 {
		t.Fatalf("largestSum beyond count = %d, want 4", got)
	}
}
