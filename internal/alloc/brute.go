package alloc

// BruteForce computes the exact MCSCEC optimum by exhaustive search, without
// relying on i*, Theorem 2's range, or the Lemma 2 shape. The test suite uses
// it as independent ground truth for Theorems 4–5.
//
// For each candidate r (scanned over 1 … 2m, deliberately wider than Theorem
// 2's [⌈m/(k−1)⌉, m] so that the range result itself is validated), a
// feasible allocation must place m+r rows with at most r per device
// (Lemma 1). For fixed row counts the cost Σ V_j·c_j is minimized by filling
// the cheapest devices first — a standard exchange argument — so the greedy
// fill per r is exact and the search is exact overall.
//
// Cost is O(m·k); use only on small instances.
func BruteForce(in Instance) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	dev := sortDevices(in)
	m, k := in.M, in.K()

	best := Plan{Cost: -1}
	for r := 1; r <= 2*m; r++ {
		if r*k < m+r {
			continue // not enough capacity at ≤ r rows per device
		}
		total := 0.0
		remaining := m + r
		assignments := make([]Assignment, 0, ceilDiv(m+r, r))
		for pos := 0; pos < k && remaining > 0; pos++ {
			rows := r
			if rows > remaining {
				rows = remaining
			}
			assignments = append(assignments, Assignment{Device: dev.order[pos], Rows: rows})
			total += float64(rows) * dev.costs[pos]
			remaining -= rows
		}
		if best.Cost < 0 || total < best.Cost {
			best = Plan{Algorithm: "BruteForce", R: r, I: len(assignments), Assignments: assignments, Cost: total}
		}
	}
	if best.Cost < 0 {
		return Plan{}, errInfeasible
	}
	return best, nil
}

// Verify checks the structural invariants of a secure plan against its
// instance: every participating device exists and is distinct, row counts are
// in [1, r] (Lemma 1), they sum to m+r, I matches, and Cost matches the
// assignments. TAw/oS plans (R == 0) are exempt from the Lemma 1 cap and must
// sum to m instead. It is the t = 1 case of the scheme-aware VerifyT: the
// single-device cap max V(B_j) ≤ r is the one-coalition capacity condition.
func Verify(in Instance, p Plan) error {
	return VerifyT(in, p, 1)
}
