package alloc

import (
	"fmt"
	"sort"
)

// TACollusion solves the task-allocation problem under the t-collusion
// threat model (the paper's §VI extension, served by the Cauchy design in
// internal/coding): any coalition of up to t devices may pool their coded
// rows, so the security condition generalizes from Lemma 1's per-device cap
// V(B_j) ≤ r to the coalition capacity condition — the t largest row counts
// must sum to at most r.
//
// The search keeps the Lemma 2 exchange argument (cheapest devices first,
// heaviest loads on the cheapest devices) and sweeps the per-device width w:
// with every device capped at w rows, r = t·w random rows make any t-device
// coalition hold at most r rows, and n = ⌈m/w⌉ + t devices place all
// m + r coded rows (the last device takes the 1..w-row remainder). For
// t = 1 the sweep coincides with TA1's shape exactly.
//
// TACollusion errors when the fleet is too small: n devices are needed for
// the widest feasible shape, so k ≥ t+1 is required (w = m gives the
// smallest fleet, 1 + t devices).
func TACollusion(in Instance, t int) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	if t < 1 {
		return Plan{}, fmt.Errorf("alloc: collusion threshold t = %d, need t >= 1", t)
	}
	dev := sortDevices(in)
	prefix := prefixSums(dev.costs)
	m, k := in.M, in.K()

	bestW, bestN, bestCost := 0, 0, -1.0
	for w := 1; w <= m; w++ {
		n := ceilDiv(m, w) + t
		if n > k {
			continue // fleet too small for this width
		}
		last := m - (ceilDiv(m, w)-1)*w
		cost := float64(w)*prefix[n-1] + float64(last)*dev.costs[n-1]
		if bestCost < 0 || cost < bestCost {
			bestW, bestN, bestCost = w, n, cost
		}
	}
	if bestCost < 0 {
		return Plan{}, fmt.Errorf("alloc: k = %d devices cannot host a t = %d collusion deployment (need k >= %d)", k, t, t+1)
	}

	r := t * bestW
	assignments := make([]Assignment, 0, bestN)
	remaining := m + r
	for pos := 0; pos < bestN; pos++ {
		rows := bestW
		if pos == bestN-1 {
			rows = remaining
		}
		assignments = append(assignments, Assignment{Device: dev.order[pos], Rows: rows})
		remaining -= rows
	}
	return Plan{Algorithm: "TAt", R: r, I: bestN, Assignments: assignments, Cost: bestCost}, nil
}

// VerifyT checks the structural invariants of a plan under the t-collusion
// security condition: every participating device exists and is distinct,
// row counts are positive and sum to m+r, I and Cost match, and — for
// secure plans (R > 0) — the t largest row counts sum to at most r, the
// coalition generalization of Lemma 1. VerifyT(in, p, 1) is exactly the
// classic Verify.
func VerifyT(in Instance, p Plan, t int) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if t < 1 {
		return fmt.Errorf("alloc: collusion threshold t = %d, need t >= 1", t)
	}
	if p.I != len(p.Assignments) {
		return fmt.Errorf("alloc: plan I = %d but %d assignments", p.I, len(p.Assignments))
	}
	seen := make(map[int]bool, len(p.Assignments))
	sum, costSum := 0, 0.0
	rows := make([]int, 0, len(p.Assignments))
	for _, a := range p.Assignments {
		if a.Device < 0 || a.Device >= in.K() {
			return fmt.Errorf("alloc: assignment references device %d of %d", a.Device, in.K())
		}
		if seen[a.Device] {
			return fmt.Errorf("alloc: device %d assigned twice", a.Device)
		}
		seen[a.Device] = true
		if a.Rows < 1 {
			return fmt.Errorf("alloc: device %d assigned %d rows", a.Device, a.Rows)
		}
		rows = append(rows, a.Rows)
		sum += a.Rows
		costSum += float64(a.Rows) * in.Costs[a.Device]
	}
	if p.R > 0 {
		if cap := largestSum(rows, t); cap > p.R {
			return fmt.Errorf("alloc: %d colluding devices could hold %d rows > r = %d (violates the coalition capacity condition)", t, cap, p.R)
		}
	}
	want := in.M + p.R
	if sum != want {
		return fmt.Errorf("alloc: assignments carry %d rows, want m+r = %d", sum, want)
	}
	if diff := costSum - p.Cost; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("alloc: plan cost %g does not match assignments (%g)", p.Cost, costSum)
	}
	return nil
}

// largestSum returns the sum of the t largest values in rows (all of them
// when t exceeds the count).
func largestSum(rows []int, t int) int {
	sorted := append([]int(nil), rows...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	if t > len(sorted) {
		t = len(sorted)
	}
	sum := 0
	for _, v := range sorted[:t] {
		sum += v
	}
	return sum
}
