// Package alloc implements the task-allocation half of the MCSCEC problem:
// choosing the number of random vectors r, the number of participating edge
// devices i, and the per-device row counts V(B_j) that minimize the total
// cost Σ_j V(B_j)·c_j subject to the availability and security conditions.
//
// The package contains the paper's two optimal algorithms (TA1, Algorithm 1;
// TA2, Algorithm 2), the lower bound of Theorem 1, the four baselines of
// §V (TAw/oS, MaxNode, MinNode, RNode), and an independent brute-force
// optimum used by the test suite to validate optimality (Theorems 4–5).
//
// All entry points accept devices in arbitrary order; results refer back to
// the caller's device indexes. Internally costs are sorted ascending, as the
// paper assumes (c_1 ≤ c_2 ≤ … ≤ c_k).
package alloc

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Instance is one MCSCEC task-allocation problem: a confidential matrix with
// M rows multiplied on a fleet of edge devices with the given per-row unit
// costs (package cost folds storage/compute/communication prices into these).
type Instance struct {
	// M is the number of rows of the data matrix A. M ≥ 1.
	M int
	// Costs holds the unit cost c_j of each edge device, in the caller's
	// device order. At least two devices are required (k ≥ 2) and every cost
	// must be strictly positive, per the system model.
	Costs []float64
}

// Validate reports whether the instance is well formed.
func (in Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("alloc: m = %d, need m >= 1", in.M)
	}
	if len(in.Costs) < 2 {
		return fmt.Errorf("alloc: k = %d devices, need k >= 2", len(in.Costs))
	}
	for j, c := range in.Costs {
		if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
			return fmt.Errorf("alloc: device %d has invalid unit cost %g, need finite cost > 0", j, c)
		}
	}
	return nil
}

// K returns the number of edge devices.
func (in Instance) K() int { return len(in.Costs) }

// Assignment is the number of coded rows placed on one device.
type Assignment struct {
	// Device is the caller's index of the device in Instance.Costs.
	Device int
	// Rows is V(B_j), the number of coded rows stored and computed there.
	Rows int
}

// Plan is a complete task allocation.
type Plan struct {
	// Algorithm names the strategy that produced the plan (e.g. "TA1").
	Algorithm string
	// R is the number of random vectors encoded with the data rows. R == 0
	// only for the insecure TAw/oS baseline.
	R int
	// I is the number of devices that participate (V(B_j) > 0).
	I int
	// Assignments lists the participating devices, cheapest first. The row
	// counts sum to M + R.
	Assignments []Assignment
	// Cost is the variable objective Σ_j V(B_j)·c_j.
	Cost float64
}

// RowsByDevice expands the plan into a dense per-device row-count slice of
// length k, in the caller's device order.
func (p Plan) RowsByDevice(k int) []int {
	rows := make([]int, k)
	for _, a := range p.Assignments {
		rows[a.Device] = a.Rows
	}
	return rows
}

// errInfeasible is reported when no allocation satisfies the constraints;
// with k ≥ 2 and m ≥ 1 this cannot happen, so it only guards internal logic.
var errInfeasible = errors.New("alloc: infeasible instance")

// byCost orders device indexes by ascending unit cost, breaking ties by the
// original index so results are deterministic.
type byCost struct {
	order []int // sorted device indexes
	costs []float64
}

// sortDevices returns the devices of in sorted by ascending cost.
func sortDevices(in Instance) byCost {
	order := make([]int, len(in.Costs))
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Costs[order[a]] < in.Costs[order[b]]
	})
	sorted := make([]float64, len(order))
	for pos, dev := range order {
		sorted[pos] = in.Costs[dev]
	}
	return byCost{order: order, costs: sorted}
}

// ceilDiv returns ⌈a/b⌉ for positive integers.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// shapeCost evaluates the Lemma 2 allocation shape for a given r over sorted
// costs: the i−1 cheapest devices carry r rows each and device i carries the
// remaining m − (i−2)·r rows, where i = ⌈(m+r)/r⌉. prefix[j] must hold
// Σ_{p<j} costs[p]. It returns the resulting i and variable cost.
func shapeCost(m, r int, prefix []float64, costs []float64) (i int, c float64) {
	i = ceilDiv(m+r, r)
	last := m - (i-2)*r // == m + r - (i-1)r
	c = float64(r)*prefix[i-1] + float64(last)*costs[i-1]
	return i, c
}

// buildPlan materializes the Lemma 2 shape into a Plan over the original
// device indexes.
func buildPlan(algorithm string, m, r int, dev byCost) Plan {
	i := ceilDiv(m+r, r)
	assignments := make([]Assignment, 0, i)
	cost := 0.0
	for pos := 0; pos < i; pos++ {
		rows := r
		if pos == i-1 {
			rows = m - (i-2)*r
		}
		assignments = append(assignments, Assignment{Device: dev.order[pos], Rows: rows})
		cost += float64(rows) * dev.costs[pos]
	}
	return Plan{Algorithm: algorithm, R: r, I: i, Assignments: assignments, Cost: cost}
}

// prefixSums returns p with p[j] = Σ_{q<j} costs[q], so p has len(costs)+1
// entries and p[0] == 0.
func prefixSums(costs []float64) []float64 {
	p := make([]float64, len(costs)+1)
	for j, c := range costs {
		p[j+1] = p[j] + c
	}
	return p
}
