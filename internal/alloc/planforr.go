package alloc

import "fmt"

// PlanForR materializes the Lemma 2 allocation shape for a caller-chosen
// number of random rows r: the i−1 cheapest devices carry r rows, device i
// carries m−(i−2)·r, with i = ⌈(m+r)/r⌉. It validates Theorem 2's
// admissible range ⌈m/(k−1)⌉ ≤ r ≤ m (outside it either some device would
// exceed the Lemma 1 cap or the plan wastes rows).
//
// This is the c^(r) function at the heart of Theorem 4's proof: TA1 and TA2
// both minimize it over r. Exposing it lets callers and the experiment
// harness study the cost curve itself (see experiments.RSweep).
func PlanForR(in Instance, r int) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	lo := ceilDiv(in.M, in.K()-1)
	if r < lo || r > in.M {
		return Plan{}, fmt.Errorf("alloc: r = %d outside Theorem 2's range [%d, %d]", r, lo, in.M)
	}
	return buildPlan(fmt.Sprintf("r=%d", r), in.M, r, sortDevices(in)), nil
}
