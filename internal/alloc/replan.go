package alloc

import "fmt"

// CostAt re-prices a plan against a different cost vector: Σ_j V(B_j)·c'_j
// with the plan's row counts kept fixed. The adaptive control plane uses it
// for its hysteresis comparison — the incumbent plan evaluated at the
// *learned* costs is the baseline a candidate re-plan must beat by the
// minimum improvement before a migration is worth its disruption. Costs are
// indexed in the same device order the plan's assignments refer to.
func (p Plan) CostAt(costs []float64) (float64, error) {
	total := 0.0
	for _, a := range p.Assignments {
		if a.Device < 0 || a.Device >= len(costs) {
			return 0, fmt.Errorf("alloc: assignment references device %d of %d", a.Device, len(costs))
		}
		total += float64(a.Rows) * costs[a.Device]
	}
	return total, nil
}
