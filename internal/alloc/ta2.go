package alloc

// TA2 runs Task Allocation Algorithm 2 (Algorithm 2, §IV-A) in O(m+k):
// Theorem 2 restricts the optimal number of random vectors to
// ⌈m/(k−1)⌉ ≤ r ≤ m, so TA2 evaluates the Lemma 2 allocation shape for every
// r in that range (each evaluation is O(1) with prefix sums) and keeps the
// cheapest. Theorem 5 proves the result is optimal; the test suite verifies
// TA1 and TA2 always agree on cost.
func TA2(in Instance) (Plan, error) {
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	dev := sortDevices(in)
	m, k := in.M, in.K()
	prefix := prefixSums(dev.costs)

	bestR := ceilDiv(m, k-1)
	_, bestCost := shapeCost(m, bestR, prefix, dev.costs)
	for r := bestR + 1; r <= m; r++ {
		if _, c := shapeCost(m, r, prefix, dev.costs); c < bestCost {
			bestR, bestCost = r, c
		}
	}
	p := buildPlan("TA2", m, bestR, dev)
	return p, nil
}
