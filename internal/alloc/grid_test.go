package alloc

import (
	"math"
	"testing"
)

// TestExhaustiveGridAgainstBruteForce sweeps a deterministic grid of
// instances — including ties, duplicated costs, and near-degenerate spreads
// that random sampling rarely hits — and demands TA1 == TA2 == brute force
// on every one.
func TestExhaustiveGridAgainstBruteForce(t *testing.T) {
	costVectors := [][]float64{
		{1, 1},
		{1, 2},
		{2, 1, 3},
		{1, 1, 1},
		{1, 1, 100},
		{1, 100, 100},
		{0.001, 1000},
		{5, 5, 5, 5, 5},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{1, 1, 2, 2, 3, 3},
		{7, 7, 7, 1, 7, 7},
		{1, 1.0000001, 1.0000002},
		{3.5, 3.5, 3.5, 3.5},
	}
	for m := 1; m <= 25; m++ {
		for ci, costs := range costVectors {
			in := Instance{M: m, Costs: costs}
			want, err := BruteForce(in)
			if err != nil {
				t.Fatalf("m=%d costs[%d]: %v", m, ci, err)
			}
			for _, solve := range []func(Instance) (Plan, error){TA1, TA2} {
				p, err := solve(in)
				if err != nil {
					t.Fatalf("m=%d costs[%d]: %v", m, ci, err)
				}
				if math.Abs(p.Cost-want.Cost) > 1e-9*math.Max(1, want.Cost) {
					t.Fatalf("%s: m=%d costs=%v: cost %g != brute force %g (r=%d vs %d)",
						p.Algorithm, m, costs, p.Cost, want.Cost, p.R, want.R)
				}
				if err := Verify(in, p); err != nil {
					t.Fatalf("m=%d costs[%d]: %v", m, ci, err)
				}
			}
		}
	}
}

// TestTieBreakingIsDeterministic: equal-cost devices must always be selected
// in stable index order, so repeated planning of the same fleet is
// reproducible.
func TestTieBreakingIsDeterministic(t *testing.T) {
	in := Instance{M: 9, Costs: []float64{2, 2, 2, 2, 2, 2}}
	first, err := TA1(in)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		p, err := TA1(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Assignments) != len(first.Assignments) {
			t.Fatal("assignment count changed across runs")
		}
		for i := range p.Assignments {
			if p.Assignments[i] != first.Assignments[i] {
				t.Fatalf("assignment %d changed: %+v vs %+v", i, p.Assignments[i], first.Assignments[i])
			}
		}
		// Stable tie-break: devices appear in ascending index order.
		for i := 1; i < len(p.Assignments); i++ {
			if p.Assignments[i].Device <= p.Assignments[i-1].Device {
				t.Fatalf("equal-cost devices out of index order: %+v", p.Assignments)
			}
		}
	}
}
