package alloc

import (
	"math"
	"math/rand/v2"
	"testing"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(3, 9)) }

// randomInstance draws a well-formed instance with m ∈ [1, maxM] rows and
// k ∈ [2, maxK] devices with costs in (0, 10].
func randomInstance(rng *rand.Rand, maxM, maxK int) Instance {
	m := 1 + rng.IntN(maxM)
	k := 2 + rng.IntN(maxK-1)
	costs := make([]float64, k)
	for j := range costs {
		costs[j] = 0.01 + 10*rng.Float64()
	}
	return Instance{M: m, Costs: costs}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		in   Instance
		ok   bool
	}{
		{"valid", Instance{M: 5, Costs: []float64{1, 2}}, true},
		{"m zero", Instance{M: 0, Costs: []float64{1, 2}}, false},
		{"one device", Instance{M: 5, Costs: []float64{1}}, false},
		{"zero cost", Instance{M: 5, Costs: []float64{0, 1}}, false},
		{"negative cost", Instance{M: 5, Costs: []float64{-1, 1}}, false},
		{"nan cost", Instance{M: 5, Costs: []float64{math.NaN(), 1}}, false},
		{"inf cost", Instance{M: 5, Costs: []float64{math.Inf(1), 1}}, false},
	}
	for _, tc := range cases {
		err := tc.in.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestIStarKnownValues(t *testing.T) {
	cases := []struct {
		name  string
		costs []float64
		want  int
	}{
		{"all equal", []float64{1, 1, 1, 1, 1}, 5},
		{"two devices", []float64{3, 7}, 2},
		{"steep jump", []float64{1, 2, 10}, 2},
		{"gentle slope", []float64{1, 1, 4}, 2},
		{"moderate", []float64{1, 2, 3}, 3},
		{"unsorted input", []float64{10, 2, 1}, 2},
		{"large homogeneous", make([]float64, 25), 25},
	}
	// fill the large homogeneous case
	for j := range cases[6].costs {
		cases[6].costs[j] = 5
	}
	for _, tc := range cases {
		got, err := IStar(Instance{M: 10, Costs: tc.costs})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: i* = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestIStarPrefixProperty checks Lemma 3 empirically: with sorted costs the
// defining inequality holds for every α ≤ i* and fails for every α > i*.
func TestIStarPrefixProperty(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 300; trial++ {
		in := randomInstance(rng, 50, 12)
		dev := sortDevices(in)
		star := istar(dev.costs)
		prefix := prefixSums(dev.costs)
		for alpha := 2; alpha <= in.K(); alpha++ {
			holds := prefix[alpha-1] >= float64(alpha-2)*dev.costs[alpha-1]
			if alpha <= star && !holds {
				t.Fatalf("Lemma 3 violated: alpha=%d <= i*=%d but inequality fails (costs %v)", alpha, star, dev.costs)
			}
			if alpha > star && holds {
				t.Fatalf("Lemma 3 violated: alpha=%d > i*=%d but inequality holds (costs %v)", alpha, star, dev.costs)
			}
		}
	}
}

func TestLowerBoundKnownValues(t *testing.T) {
	cases := []struct {
		name string
		in   Instance
		want float64
	}{
		{"uniform five", Instance{M: 4, Costs: []float64{1, 1, 1, 1, 1}}, 5},
		{"steep", Instance{M: 5, Costs: []float64{1, 2, 10}}, 15},
		{"two devices", Instance{M: 7, Costs: []float64{2, 3}}, 35},
	}
	for _, tc := range cases {
		got, err := LowerBound(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: LB = %g, want %g", tc.name, got, tc.want)
		}
	}
}

func TestTA1KnownValues(t *testing.T) {
	cases := []struct {
		name     string
		in       Instance
		wantR    int
		wantI    int
		wantCost float64
	}{
		{"uniform divisible", Instance{M: 4, Costs: []float64{1, 1, 1, 1, 1}}, 1, 5, 5},
		{"steep prefers two", Instance{M: 5, Costs: []float64{1, 2, 10}}, 5, 2, 15},
		{"uniform non-divisible", Instance{M: 5, Costs: []float64{1, 1, 1, 1}}, 2, 4, 7},
		{"k2", Instance{M: 9, Costs: []float64{4, 1}}, 9, 2, 45},
	}
	for _, tc := range cases {
		p, err := TA1(tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if p.R != tc.wantR || p.I != tc.wantI || math.Abs(p.Cost-tc.wantCost) > 1e-9 {
			t.Errorf("%s: plan r=%d i=%d cost=%g, want r=%d i=%d cost=%g",
				tc.name, p.R, p.I, p.Cost, tc.wantR, tc.wantI, tc.wantCost)
		}
		if err := Verify(tc.in, p); err != nil {
			t.Errorf("%s: Verify: %v", tc.name, err)
		}
	}
}

func TestPlanShapeMatchesLemma2(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 80, 12)
		for _, solve := range []func(Instance) (Plan, error){TA1, TA2, MaxNode, MinNode} {
			p, err := solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if p.I != ceilDiv(in.M+p.R, p.R) {
				t.Fatalf("%s: i = %d, want ceil((m+r)/r) = %d", p.Algorithm, p.I, ceilDiv(in.M+p.R, p.R))
			}
			for idx, a := range p.Assignments {
				want := p.R
				if idx == p.I-1 {
					want = in.M - (p.I-2)*p.R
				}
				if a.Rows != want {
					t.Fatalf("%s: assignment %d has %d rows, want %d", p.Algorithm, idx, a.Rows, want)
				}
			}
			if err := Verify(in, p); err != nil {
				t.Fatalf("%s: %v", p.Algorithm, err)
			}
		}
	}
}

// TestTA1EqualsTA2 is Theorems 4–5 in property-test form: the O(k) and
// O(m+k) algorithms must always land on the same optimal cost.
func TestTA1EqualsTA2(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 2000; trial++ {
		in := randomInstance(rng, 100, 15)
		p1, err1 := TA1(in)
		p2, err2 := TA2(in)
		if err1 != nil || err2 != nil {
			t.Fatalf("TA1 err=%v TA2 err=%v", err1, err2)
		}
		if math.Abs(p1.Cost-p2.Cost) > 1e-6 {
			t.Fatalf("TA1 cost %g != TA2 cost %g on m=%d costs=%v (r1=%d r2=%d)",
				p1.Cost, p2.Cost, in.M, in.Costs, p1.R, p2.R)
		}
	}
}

// TestOptimalityAgainstBruteForce validates both algorithms against the
// exhaustive optimum, which assumes none of the paper's structure beyond
// Lemma 1 and greedy exchange.
func TestOptimalityAgainstBruteForce(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 400; trial++ {
		in := randomInstance(rng, 40, 8)
		want, err := BruteForce(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, solve := range []func(Instance) (Plan, error){TA1, TA2} {
			p, err := solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if p.Cost > want.Cost+1e-6 {
				t.Fatalf("%s cost %g exceeds brute-force optimum %g (m=%d costs=%v)",
					p.Algorithm, p.Cost, want.Cost, in.M, in.Costs)
			}
			if p.Cost < want.Cost-1e-6 {
				t.Fatalf("%s cost %g below brute-force optimum %g — brute force is broken", p.Algorithm, p.Cost, want.Cost)
			}
		}
	}
}

// TestLowerBoundHolds is Theorem 1: no algorithm (and not even brute force)
// beats c^L, and divisible instances attain it exactly (Corollary 1).
func TestLowerBoundHolds(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 500; trial++ {
		in := randomInstance(rng, 60, 10)
		lb, err := LowerBound(in)
		if err != nil {
			t.Fatal(err)
		}
		p, err := TA2(in)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost < lb-1e-6 {
			t.Fatalf("optimal cost %g below lower bound %g (m=%d costs=%v)", p.Cost, lb, in.M, in.Costs)
		}
		star, _ := IStar(in)
		if in.M%(star-1) == 0 && math.Abs(p.Cost-lb) > 1e-6 {
			t.Fatalf("Corollary 1 violated: (i*-1)|m but cost %g != LB %g (m=%d i*=%d costs=%v)",
				p.Cost, lb, in.M, star, in.Costs)
		}
	}
}

// TestTheorem2Range checks that every optimal plan (from TA1, TA2, and brute
// force) uses ⌈m/(k−1)⌉ ≤ r ≤ m.
func TestTheorem2Range(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 300; trial++ {
		in := randomInstance(rng, 40, 8)
		lo := ceilDiv(in.M, in.K()-1)
		for _, solve := range []func(Instance) (Plan, error){TA1, TA2, BruteForce} {
			p, err := solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if p.R < lo || p.R > in.M {
				t.Fatalf("%s: r = %d outside Theorem 2 range [%d, %d] (m=%d costs=%v)",
					p.Algorithm, p.R, lo, in.M, in.M, in.Costs)
			}
		}
	}
}

// TestLemma1Cap checks V(B_j) ≤ r on every produced secure plan.
func TestLemma1Cap(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 60, 10)
		rp, err := RNode(in, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Plan{mustPlan(t, TA1, in), mustPlan(t, TA2, in), mustPlan(t, MaxNode, in), mustPlan(t, MinNode, in), rp} {
			for _, a := range p.Assignments {
				if a.Rows > p.R {
					t.Fatalf("%s: device %d carries %d > r = %d", p.Algorithm, a.Device, a.Rows, p.R)
				}
			}
		}
	}
}

func mustPlan(t *testing.T, solve func(Instance) (Plan, error), in Instance) Plan {
	t.Helper()
	p, err := solve(in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBaselinesNeverBeatOptimal: MCSCEC (TA2) is at most every secure
// baseline, and TAw/oS (which drops security) is at most MCSCEC.
func TestBaselinesNeverBeatOptimal(t *testing.T) {
	rng := testRNG()
	for trial := 0; trial < 500; trial++ {
		in := randomInstance(rng, 80, 12)
		opt := mustPlan(t, TA2, in)
		for _, solve := range []func(Instance) (Plan, error){MaxNode, MinNode} {
			p := mustPlan(t, solve, in)
			if p.Cost < opt.Cost-1e-6 {
				t.Fatalf("%s cost %g beats optimal %g (m=%d costs=%v)", p.Algorithm, p.Cost, opt.Cost, in.M, in.Costs)
			}
		}
		rp, err := RNode(in, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Cost < opt.Cost-1e-6 {
			t.Fatalf("RNode cost %g beats optimal %g", rp.Cost, opt.Cost)
		}
		woS, err := TAWithoutSecurity(in)
		if err != nil {
			t.Fatal(err)
		}
		if woS.Cost > opt.Cost+1e-6 {
			t.Fatalf("TAw/oS cost %g exceeds secure optimal %g — security overhead cannot be negative", woS.Cost, opt.Cost)
		}
	}
}

func TestTAWithoutSecurityShape(t *testing.T) {
	in := Instance{M: 10, Costs: []float64{1, 1, 1, 2, 2}}
	p, err := TAWithoutSecurity(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.R != 0 {
		t.Fatalf("TAw/oS R = %d, want 0", p.R)
	}
	sum := 0
	for _, a := range p.Assignments {
		sum += a.Rows
	}
	if sum != in.M {
		t.Fatalf("TAw/oS allocates %d rows, want m = %d", sum, in.M)
	}
	// Equal split: i* = 5 here (uniform-ish costs: check), rows differ by at most 1.
	minRows, maxRows := p.Assignments[0].Rows, p.Assignments[0].Rows
	for _, a := range p.Assignments {
		if a.Rows < minRows {
			minRows = a.Rows
		}
		if a.Rows > maxRows {
			maxRows = a.Rows
		}
	}
	if maxRows-minRows > 1 {
		t.Fatalf("TAw/oS split uneven: min %d max %d", minRows, maxRows)
	}
}

func TestTAWithoutSecurityFewRows(t *testing.T) {
	// m smaller than i*: only m devices participate, one row each.
	in := Instance{M: 2, Costs: []float64{1, 1, 1, 1, 1}}
	p, err := TAWithoutSecurity(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.I != 2 || len(p.Assignments) != 2 {
		t.Fatalf("expected 2 participating devices, got %d", p.I)
	}
	for _, a := range p.Assignments {
		if a.Rows != 1 {
			t.Fatalf("expected 1 row per device, got %d", a.Rows)
		}
	}
}

func TestMinNodeUsesTwoCheapest(t *testing.T) {
	in := Instance{M: 6, Costs: []float64{5, 1, 3, 2}}
	p, err := MinNode(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.I != 2 || p.R != 6 {
		t.Fatalf("MinNode i=%d r=%d, want i=2 r=6", p.I, p.R)
	}
	if p.Assignments[0].Device != 1 || p.Assignments[1].Device != 3 {
		t.Fatalf("MinNode picked devices %v, want cheapest {1,3}", p.Assignments)
	}
	if p.Cost != 6*1+6*2 {
		t.Fatalf("MinNode cost = %g, want 18", p.Cost)
	}
}

func TestMaxNodeUsesMostDevices(t *testing.T) {
	in := Instance{M: 6, Costs: []float64{1, 1, 1, 1}}
	p, err := MaxNode(in)
	if err != nil {
		t.Fatal(err)
	}
	// r = ceil(6/3) = 2, i = ceil(8/2) = 4 — every device participates.
	if p.R != 2 || p.I != 4 {
		t.Fatalf("MaxNode r=%d i=%d, want r=2 i=4", p.R, p.I)
	}
}

func TestRNodeWithinRangeAndDeterministicWithSeed(t *testing.T) {
	in := Instance{M: 20, Costs: []float64{1, 2, 3, 4, 5}}
	lo := ceilDiv(in.M, in.K()-1)
	for trial := 0; trial < 100; trial++ {
		p, err := RNode(in, testRNG())
		if err != nil {
			t.Fatal(err)
		}
		if p.R < lo || p.R > in.M {
			t.Fatalf("RNode r = %d outside [%d, %d]", p.R, lo, in.M)
		}
	}
	p1, _ := RNode(in, rand.New(rand.NewPCG(42, 42)))
	p2, _ := RNode(in, rand.New(rand.NewPCG(42, 42)))
	if p1.R != p2.R {
		t.Fatal("RNode must be deterministic for a fixed seed")
	}
}

func TestPlansReferenceOriginalDeviceIndexes(t *testing.T) {
	// Device 2 is the cheapest; plans must cite index 2, not position 0.
	in := Instance{M: 4, Costs: []float64{9, 8, 1, 7}}
	p := mustPlan(t, TA1, in)
	if p.Assignments[0].Device != 2 {
		t.Fatalf("cheapest assignment device = %d, want 2", p.Assignments[0].Device)
	}
	rows := p.RowsByDevice(in.K())
	if len(rows) != 4 || rows[2] == 0 {
		t.Fatalf("RowsByDevice = %v", rows)
	}
}

func TestVerifyCatchesCorruptPlans(t *testing.T) {
	in := Instance{M: 4, Costs: []float64{1, 2, 3}}
	good := mustPlan(t, TA1, in)

	bad := good
	bad.R = good.R + 1 // row sum no longer matches m+r
	if err := Verify(in, bad); err == nil {
		t.Error("Verify should reject row-sum mismatch")
	}

	bad = good
	bad.Cost = good.Cost + 5
	if err := Verify(in, bad); err == nil {
		t.Error("Verify should reject cost mismatch")
	}

	bad = good
	bad.Assignments = append([]Assignment{}, good.Assignments...)
	bad.Assignments[0].Device = 99
	if err := Verify(in, bad); err == nil {
		t.Error("Verify should reject out-of-range device")
	}

	bad = good
	bad.I = good.I + 1
	if err := Verify(in, bad); err == nil {
		t.Error("Verify should reject I mismatch")
	}
}

func TestDegenerateInstances(t *testing.T) {
	// m = 1: one data row still needs one random row and two devices.
	p := mustPlan(t, TA1, Instance{M: 1, Costs: []float64{1, 2}})
	if p.R != 1 || p.I != 2 || p.Cost != 1*1+1*2 {
		t.Fatalf("m=1 plan r=%d i=%d cost=%g", p.R, p.I, p.Cost)
	}
	// Identical costs, k=2.
	p = mustPlan(t, TA2, Instance{M: 10, Costs: []float64{3, 3}})
	if p.R != 10 || p.Cost != 60 {
		t.Fatalf("k=2 plan r=%d cost=%g, want r=10 cost=60", p.R, p.Cost)
	}
	// Extreme cost spread: a single cheap pair dominates.
	p = mustPlan(t, TA1, Instance{M: 12, Costs: []float64{0.001, 0.001, 1e6, 1e6, 1e6}})
	if p.I != 2 {
		t.Fatalf("extreme spread should select 2 devices, got %d", p.I)
	}
}

func TestErrorsOnInvalidInstance(t *testing.T) {
	bad := Instance{M: 0, Costs: []float64{1, 2}}
	rng := testRNG()
	if _, err := TA1(bad); err == nil {
		t.Error("TA1 should reject invalid instance")
	}
	if _, err := TA2(bad); err == nil {
		t.Error("TA2 should reject invalid instance")
	}
	if _, err := MaxNode(bad); err == nil {
		t.Error("MaxNode should reject invalid instance")
	}
	if _, err := MinNode(bad); err == nil {
		t.Error("MinNode should reject invalid instance")
	}
	if _, err := RNode(bad, rng); err == nil {
		t.Error("RNode should reject invalid instance")
	}
	if _, err := TAWithoutSecurity(bad); err == nil {
		t.Error("TAw/oS should reject invalid instance")
	}
	if _, err := BruteForce(bad); err == nil {
		t.Error("BruteForce should reject invalid instance")
	}
	if _, err := LowerBound(bad); err == nil {
		t.Error("LowerBound should reject invalid instance")
	}
	if _, err := IStar(bad); err == nil {
		t.Error("IStar should reject invalid instance")
	}
}
