package alloc

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randInstance draws a seeded random instance of the shape the adaptive
// control plane re-plans over: modest m, a device pool, base costs in
// [0.5, 4).
func randInstance(rng *rand.Rand) Instance {
	m := 1 + rng.IntN(400)
	k := 2 + rng.IntN(40)
	costs := make([]float64, k)
	for j := range costs {
		costs[j] = 0.5 + 3.5*rng.Float64()
	}
	return Instance{M: m, Costs: costs}
}

// perturb applies learned-style multiplicative factors in [1/8, 8] to a copy
// of the instance's costs — the transform the estimator's clamp guarantees.
func perturb(rng *rand.Rand, in Instance) Instance {
	costs := make([]float64, len(in.Costs))
	for j, c := range in.Costs {
		exp := rng.Float64()*6 - 3 // factor = 2^exp ∈ [1/8, 8]
		costs[j] = c * math.Pow(2, exp)
	}
	return Instance{M: in.M, Costs: costs}
}

// TestReplannedPlansVerify is the adaptive control plane's structural safety
// property: every plan TA1/TA2 produces on learned (perturbed) costs passes
// the full Verify invariants — distinct devices, Lemma 1 row caps, row sums,
// exact cost — so an adopted re-plan can always be realized as a secure
// placement.
func TestReplannedPlansVerify(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 80))
	for trial := 0; trial < 300; trial++ {
		in := randInstance(rng)
		for round := 0; round < 3; round++ {
			for _, algo := range []struct {
				name string
				run  func(Instance) (Plan, error)
			}{{"TA1", TA1}, {"TA2", TA2}} {
				p, err := algo.run(in)
				if err != nil {
					t.Fatalf("trial %d round %d %s: %v", trial, round, algo.name, err)
				}
				if err := Verify(in, p); err != nil {
					t.Fatalf("trial %d round %d %s plan fails verification: %v", trial, round, algo.name, err)
				}
			}
			in = perturb(rng, in)
		}
	}
}

// TestCostAtMatchesCost pins that repricing a plan at its own instance costs
// reproduces Plan.Cost — the identity the hysteresis comparison depends on.
func TestCostAtMatchesCost(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 90))
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng)
		p, err := TA2(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.CostAt(in.Costs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p.Cost) > 1e-9*math.Max(1, p.Cost) {
			t.Fatalf("trial %d: CostAt = %g, Cost = %g", trial, got, p.Cost)
		}
	}
}

func TestCostAtRejectsShortVector(t *testing.T) {
	in := Instance{M: 10, Costs: []float64{1, 1, 1}}
	p, err := TA2(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CostAt(make([]float64, 1)); err == nil {
		t.Fatal("CostAt accepted a cost vector shorter than the device indexes")
	}
}

// TestReplanNeverWorseUnderCostChange is the monotonicity property the
// re-planner relies on: whatever the costs drift to, re-running TA2 at the
// new costs is never worse than keeping the incumbent plan and paying the
// new prices for it. (This is immediate from optimality over a fixed
// feasible set, and pinning it guards the implementation: the incumbent's
// row profile is itself feasible for the new instance.)
func TestReplanNeverWorseUnderCostChange(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 100))
	for trial := 0; trial < 300; trial++ {
		in := randInstance(rng)
		incumbent, err := TA2(in)
		if err != nil {
			t.Fatal(err)
		}
		drifted := perturb(rng, in)
		replanned, err := TA2(drifted)
		if err != nil {
			t.Fatal(err)
		}
		stay, err := incumbent.CostAt(drifted.Costs)
		if err != nil {
			t.Fatal(err)
		}
		if replanned.Cost > stay*(1+1e-9) {
			t.Fatalf("trial %d: re-planning made things worse: %g vs staying %g", trial, replanned.Cost, stay)
		}
	}
}

// TestReplanMonotoneCostDecrease pins the one-sided version on monotone
// drift: lowering some costs (a straggler recovering, say) can only lower
// the TA2 optimum.
func TestReplanMonotoneCostDecrease(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 110))
	for trial := 0; trial < 300; trial++ {
		in := randInstance(rng)
		before, err := TA2(in)
		if err != nil {
			t.Fatal(err)
		}
		cheaper := Instance{M: in.M, Costs: make([]float64, len(in.Costs))}
		for j, c := range in.Costs {
			f := 1.0
			if rng.IntN(2) == 0 {
				f = 0.25 + 0.75*rng.Float64() // shrink, never grow
			}
			cheaper.Costs[j] = c * f
		}
		after, err := TA2(cheaper)
		if err != nil {
			t.Fatal(err)
		}
		if after.Cost > before.Cost*(1+1e-9) {
			t.Fatalf("trial %d: costs only decreased but the optimum rose: %g → %g", trial, before.Cost, after.Cost)
		}
	}
}
