package workload

import (
	"math"
	"math/rand/v2"
	"testing"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(17, 19)) }

func TestUniformSupport(t *testing.T) {
	u := Uniform{Max: 5}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := testRNG()
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := u.Sample(rng)
		if v < 1 || v > 5 {
			t.Fatalf("sample %g outside [1, 5]", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean = %g, want ≈ 3", mean)
	}
}

func TestUniformValidate(t *testing.T) {
	if err := (Uniform{Max: 0.5}).Validate(); err == nil {
		t.Fatal("c_max < 1 should be invalid")
	}
	if err := (Uniform{Max: 1}).Validate(); err != nil {
		t.Fatalf("degenerate-but-legal support rejected: %v", err)
	}
}

func TestNormalPositivityAndMoments(t *testing.T) {
	n := Normal{Mu: 5, Sigma: 1.25}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := testRNG()
	sum, sumSq := 0.0, 0.0
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := n.Sample(rng)
		if v <= 0 {
			t.Fatalf("non-positive sample %g", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	std := math.Sqrt(sumSq/draws - mean*mean)
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %g, want ≈ 5", mean)
	}
	if math.Abs(std-1.25) > 0.05 {
		t.Fatalf("std = %g, want ≈ 1.25", std)
	}
}

func TestNormalExtremeTruncation(t *testing.T) {
	// μ far below zero: resampling gives up and returns the floor.
	n := Normal{Mu: 0.0001, Sigma: 0.00001}
	rng := testRNG()
	for i := 0; i < 100; i++ {
		if v := n.Sample(rng); v <= 0 {
			t.Fatalf("non-positive sample %g", v)
		}
	}
}

func TestNormalValidate(t *testing.T) {
	if err := (Normal{Mu: -1, Sigma: 1}).Validate(); err == nil {
		t.Fatal("negative mu should be invalid")
	}
	if err := (Normal{Mu: 1, Sigma: -1}).Validate(); err == nil {
		t.Fatal("negative sigma should be invalid")
	}
}

func TestExponentialSupportAndMean(t *testing.T) {
	e := Exponential{Mean: 2}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := testRNG()
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := e.Sample(rng)
		if v < 1 {
			t.Fatalf("sample %g below the shift", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("mean = %g, want ≈ 3", mean)
	}
	if err := (Exponential{Mean: 0}).Validate(); err == nil {
		t.Fatal("zero mean should be invalid")
	}
}

func TestParetoSupportAndTail(t *testing.T) {
	p := Pareto{Alpha: 2}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := testRNG()
	const n = 20000
	big := 0
	for i := 0; i < n; i++ {
		v := p.Sample(rng)
		if v < 1 {
			t.Fatalf("sample %g below scale 1", v)
		}
		if v > 10 {
			big++
		}
	}
	// P(V > 10) = 10^-α = 1% for α = 2.
	if frac := float64(big) / n; math.Abs(frac-0.01) > 0.005 {
		t.Fatalf("tail mass above 10 = %g, want ≈ 0.01", frac)
	}
	if err := (Pareto{Alpha: -1}).Validate(); err == nil {
		t.Fatal("negative alpha should be invalid")
	}
	if (Pareto{Alpha: 2}).Name() != "Pareto(2)" || (Exponential{Mean: 2}).Name() != "1+Exp(2)" {
		t.Fatal("names wrong")
	}
}

func TestInstanceShapeAndValidity(t *testing.T) {
	rng := testRNG()
	in := Instance(rng, 100, 25, Uniform{Max: 5})
	if in.M != 100 || in.K() != 25 {
		t.Fatalf("instance m=%d k=%d, want 100, 25", in.M, in.K())
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminismAndIndependence(t *testing.T) {
	a := RNG(1, 2, 3)
	b := RNG(1, 2, 3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("same triple must produce the same stream")
	}
	c := RNG(1, 2, 4)
	d := RNG(1, 3, 3)
	ref := RNG(1, 2, 3)
	if v := ref.Uint64(); c.Uint64() == v || d.Uint64() == v {
		t.Fatal("different triples should produce different streams")
	}
}

func TestPaperDefaults(t *testing.T) {
	d := PaperDefaults()
	if d.M != 5000 || d.K != 25 || d.CMax != 5 || d.Mu != 5 || d.Sigma != 1.25 || d.Instances != 1000 {
		t.Fatalf("defaults %+v do not match §V", d)
	}
}

func TestNames(t *testing.T) {
	if (Uniform{Max: 5}).Name() != "U(1, 5)" {
		t.Errorf("uniform name = %q", (Uniform{Max: 5}).Name())
	}
	if (Normal{Mu: 5, Sigma: 1.25}).Name() != "N(5, 1.25²)" {
		t.Errorf("normal name = %q", (Normal{Mu: 5, Sigma: 1.25}).Name())
	}
}
