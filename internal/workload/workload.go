// Package workload generates the statistical instances of the paper's
// evaluation (§V): fleets of edge devices whose unit costs follow either a
// uniform distribution U(1, c_max) or a normal distribution N(μ, σ²), plus
// random data matrices and input vectors for the end-to-end pipeline.
//
// All generation is driven by an explicit seeded *rand.Rand so every
// experiment is reproducible; the experiment harness derives one PCG stream
// per (figure, point, instance) triple.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/scec/scec/internal/alloc"
)

// minCost is the floor applied to sampled unit costs. The system model
// requires c_j > 0, and the truncated-normal regime of Fig. 2(d) (σ up to
// 2.5 around μ = 5) occasionally samples near zero.
const minCost = 1e-3

// CostDist samples one device unit cost.
type CostDist interface {
	// Sample draws one unit cost, always > 0.
	Sample(rng *rand.Rand) float64
	// Name identifies the distribution in experiment output.
	Name() string
}

// Uniform is U(1, Max), the distribution of Fig. 2(a)–(c).
type Uniform struct {
	// Max is c_max, the upper edge of the support. Must exceed 1.
	Max float64
}

// Sample implements CostDist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return 1 + (u.Max-1)*rng.Float64()
}

// Name implements CostDist.
func (u Uniform) Name() string { return fmt.Sprintf("U(1, %g)", u.Max) }

// Validate checks the support is non-degenerate.
func (u Uniform) Validate() error {
	if u.Max < 1 {
		return fmt.Errorf("workload: c_max = %g < 1", u.Max)
	}
	return nil
}

// Normal is N(Mu, Sigma²) truncated to positive values, the distribution of
// Fig. 2(d)–(e).
type Normal struct {
	// Mu is the mean unit cost μ.
	Mu float64
	// Sigma is the standard deviation σ.
	Sigma float64
}

// Sample implements CostDist: it resamples on non-positive draws (rare for
// the paper's parameter ranges) and floors at a small positive constant.
func (n Normal) Sample(rng *rand.Rand) float64 {
	for attempt := 0; attempt < 64; attempt++ {
		if v := n.Mu + n.Sigma*rng.NormFloat64(); v > minCost {
			return v
		}
	}
	return minCost
}

// Name implements CostDist.
func (n Normal) Name() string { return fmt.Sprintf("N(%g, %g²)", n.Mu, n.Sigma) }

// Validate checks the parameters describe a mostly-positive cost population.
func (n Normal) Validate() error {
	if n.Mu <= 0 {
		return fmt.Errorf("workload: mu = %g <= 0", n.Mu)
	}
	if n.Sigma < 0 {
		return fmt.Errorf("workload: sigma = %g < 0", n.Sigma)
	}
	return nil
}

// Exponential is an exponential cost distribution with the given mean,
// shifted to start at 1 (every device pays at least a baseline cost). Not
// used by the paper's figures; provided for heterogeneity studies beyond
// §V's two distributions.
type Exponential struct {
	// Mean is the mean of the exponential part; total mean is 1 + Mean.
	Mean float64
}

// Sample implements CostDist.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return 1 + e.Mean*rng.ExpFloat64()
}

// Name implements CostDist.
func (e Exponential) Name() string { return fmt.Sprintf("1+Exp(%g)", e.Mean) }

// Validate checks the mean is positive.
func (e Exponential) Validate() error {
	if e.Mean <= 0 {
		return fmt.Errorf("workload: exponential mean = %g <= 0", e.Mean)
	}
	return nil
}

// Pareto is a heavy-tailed cost distribution with scale 1 and the given
// shape α: most devices are cheap, a few are very expensive — the regime
// where concentrating on cheap devices pays off most.
type Pareto struct {
	// Alpha is the tail index; smaller means heavier tail. Must exceed 0.
	Alpha float64
}

// Sample implements CostDist via inverse-CDF sampling.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return math.Pow(u, -1/p.Alpha)
}

// Name implements CostDist.
func (p Pareto) Name() string { return fmt.Sprintf("Pareto(%g)", p.Alpha) }

// Validate checks the shape parameter.
func (p Pareto) Validate() error {
	if p.Alpha <= 0 {
		return fmt.Errorf("workload: pareto alpha = %g <= 0", p.Alpha)
	}
	return nil
}

// Instance draws one task-allocation instance: m data rows and k devices
// with unit costs sampled i.i.d. from dist.
func Instance(rng *rand.Rand, m, k int, dist CostDist) alloc.Instance {
	costs := make([]float64, k)
	for j := range costs {
		costs[j] = dist.Sample(rng)
	}
	return alloc.Instance{M: m, Costs: costs}
}

// Defaults holds the paper's default simulation parameters (§V).
type Defaults struct {
	M         int     // rows of A
	K         int     // edge devices
	CMax      float64 // U(1, c_max)
	Mu        float64 // N(μ, σ²)
	Sigma     float64
	Instances int // instances averaged per configuration point
}

// PaperDefaults returns the §V values: m = 5000, k = 25, c_max = 5, μ = 5,
// σ = 1.25, 1000 instances per point.
func PaperDefaults() Defaults {
	return Defaults{M: 5000, K: 25, CMax: 5, Mu: 5, Sigma: 1.25, Instances: 1000}
}

// RNG builds a deterministic generator from a experiment label and indexes,
// so that every (figure, sweep point, instance) triple gets an independent
// but reproducible stream.
func RNG(seed uint64, point, instance int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, uint64(point)<<32|uint64(uint32(instance))))
}
