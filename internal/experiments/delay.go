package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/sim"
	"github.com/scec/scec/internal/workload"
)

// DelayPoint is one (replication factor, straggler probability) cell of the
// delay study.
type DelayPoint struct {
	// Replicas is how many devices host each coded block.
	Replicas int
	// StragglerProb is the per-replica probability of a 10× slowdown.
	StragglerProb float64
	// SuccessRate is the fraction of trials where every block had at least
	// one surviving replica.
	SuccessRate float64
	// MeanCompletion averages completion time over successful trials.
	MeanCompletion time.Duration
	// StorageOverhead is provisioned rows / (m+r).
	StorageOverhead float64
}

// DelayResult is the full study.
type DelayResult struct {
	// M, L, R document the coded workload simulated.
	M, L, R int
	// Points holds one cell per (replicas, stragglerProb) pair.
	Points []DelayPoint
}

// Delay-study constants: a mid-sized workload, a 10× straggler model, and a
// 3% independent replica failure probability.
const (
	delayM          = 200
	delayL          = 32
	delayStraggle   = 10.0
	delayFailProb   = 0.03
	delayTrialCount = 150
	saltDelay       = 0xde1a
)

// DelaySweep quantifies Remark 1 and the §II-A availability assumption on
// the event-level simulator: how replication of coded blocks trades storage
// for completion-time stability and success rate under stragglers and
// failures. For each replication factor 1–3 and straggler probability in
// {0, 0.2, 0.5}, it runs many seeded trials of the full protocol.
func DelaySweep(cfg Config) (DelayResult, error) {
	f := field.Prime{}
	rng := workload.RNG(cfg.Seed^saltDelay, 0, 0)

	in := workload.Instance(rng, delayM, 10, workload.Uniform{Max: cfg.Defaults.CMax})
	plan, err := alloc.TA1(in)
	if err != nil {
		return DelayResult{}, err
	}
	scheme, err := coding.New(delayM, plan.R)
	if err != nil {
		return DelayResult{}, err
	}
	a := matrix.Random(f, rng, delayM, delayL)
	enc, err := coding.Encode(f, scheme, a, rng)
	if err != nil {
		return DelayResult{}, err
	}
	x := matrix.RandomVec(f, rng, delayL)
	want := matrix.MulVec(f, a, x)

	res := DelayResult{M: delayM, L: delayL, R: plan.R}
	for _, replicas := range []int{1, 2, 3} {
		for _, pStraggle := range []float64{0, 0.2, 0.5} {
			pt := DelayPoint{Replicas: replicas, StragglerProb: pStraggle}
			successes := 0
			var totalCompletion time.Duration
			for trial := 0; trial < delayTrialCount; trial++ {
				trialRNG := workload.RNG(cfg.Seed^saltDelay, replicas*1000+int(pStraggle*10), trial)
				rcfg := sim.ReplicatedConfig{
					Replicas:        make([][]sim.DeviceProfile, scheme.Devices()),
					UserComputeRate: 1e9,
					Seed:            trialRNG.Uint64(),
				}
				for j := range rcfg.Replicas {
					group := make([]sim.DeviceProfile, replicas)
					for rIdx := range group {
						p := sim.DefaultProfile()
						p.FailProb = delayFailProb
						if trialRNG.Float64() < pStraggle {
							p.StragglerFactor = delayStraggle
						}
						group[rIdx] = p
					}
					rcfg.Replicas[j] = group
				}
				got, rep, err := sim.RunReplicated(f, enc, x, rcfg)
				if err != nil {
					continue // all replicas of some block failed
				}
				if !matrix.VecEqual(f, got, want) {
					return DelayResult{}, fmt.Errorf("experiments: delay trial decoded the wrong result")
				}
				successes++
				totalCompletion += rep.CompletionTime
				pt.StorageOverhead = rep.StorageOverhead
			}
			pt.SuccessRate = float64(successes) / float64(delayTrialCount)
			if successes > 0 {
				pt.MeanCompletion = totalCompletion / time.Duration(successes)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// WriteDelayMarkdown renders the delay study as a markdown table.
func WriteDelayMarkdown(w io.Writer, res DelayResult) error {
	if _, err := fmt.Fprintf(w, "### delay — replication vs stragglers/failures (m=%d, l=%d, r=%d, %d trials/cell)\n\n",
		res.M, res.L, res.R, delayTrialCount); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| replicas | straggler prob | success rate | mean completion | storage overhead |\n|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "| %d | %.1f | %.1f%% | %.3fms | %.1fx |\n",
			p.Replicas, p.StragglerProb, 100*p.SuccessRate,
			float64(p.MeanCompletion.Microseconds())/1000, p.StorageOverhead); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
