package experiments

import (
	"strings"
	"testing"
)

func TestBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run takes ~100ms of pure timing loops")
	}
	rep, err := Bench(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("want 4 benchmark cases, got %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.OpsPerS <= 0 || r.Iters <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", r.Name, r)
		}
	}
	var b strings.Builder
	if err := WriteBenchJSON(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ns_per_op"`) {
		t.Errorf("JSON missing ns_per_op:\n%s", b.String())
	}
}
