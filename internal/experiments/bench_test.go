package experiments

import (
	"strings"
	"testing"
)

func TestBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run takes ~100ms of pure timing loops")
	}
	rep, err := Bench(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 10 {
		t.Fatalf("want 10 benchmark cases, got %d", len(rep.Results))
	}
	for _, want := range []string{
		"journal/publish",
		"allocate/ta1/m=1000,k=25",
		"encode/m=1000,l=64",
		"encode/m=1000,l=64/generic-serial",
		"compute/all-devices/m=1000,l=64",
		"compute/all-devices/m=1000,l=64/generic-serial",
		"compute/batch/m=1000,l=64,n=8",
		"compute/batch/m=1000,l=64,n=8/generic-serial",
		"decode/m=1000",
		"decode/batch/m=1000,n=8",
	} {
		found := false
		for _, r := range rep.Results {
			if r.Name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("bench case %q missing", want)
		}
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.OpsPerS <= 0 || r.Iters <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", r.Name, r)
		}
	}
	if rep.KernelPoolSize < 1 {
		t.Errorf("KernelPoolSize = %d, want >= 1", rep.KernelPoolSize)
	}
	if err := CheckBench(rep); err != nil {
		t.Errorf("CheckBench: %v", err)
	}
	if err := CheckBench(BenchReport{}); err == nil {
		t.Error("CheckBench accepted an empty report")
	}
	bad := rep
	bad.Results = append([]BenchResult(nil), rep.Results...)
	bad.Results[0].OpsPerS = 0
	if err := CheckBench(bad); err == nil {
		t.Error("CheckBench accepted zero throughput")
	}
	slow := BenchReport{Results: []BenchResult{
		{Name: "journal/publish", Iters: 1, NsPerOp: maxJournalPublishNs + 1, OpsPerS: 1},
	}}
	if err := CheckBench(slow); err == nil {
		t.Error("CheckBench accepted a journal publish over budget")
	}
	var b strings.Builder
	if err := WriteBenchJSON(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ns_per_op"`) {
		t.Errorf("JSON missing ns_per_op:\n%s", b.String())
	}
}
