package experiments

import (
	"fmt"
	"math"
)

// Claim is one quantified statement from §I/§V together with its measured
// counterpart.
type Claim struct {
	// ID is a short handle, e.g. "lb-gap".
	ID string
	// Statement quotes the paper's claim.
	Statement string
	// PaperValue is the quantitative bound from the paper, as a fraction
	// (0.005 for "0.5%").
	PaperValue float64
	// Measured is the value observed in this run, same units.
	Measured float64
	// Holds reports whether the measured value satisfies the claim's
	// direction (see Direction).
	Holds bool
	// Direction is "<=" when the claim bounds the measured value from above
	// and ">=" when from below.
	Direction string
}

// ClaimReport aggregates the headline-claim measurements.
type ClaimReport struct {
	Claims []Claim
	// SigmaCrossover is the σ at which the MaxNode and MinNode curves of
	// Fig. 2(d) cross (MaxNode cheaper to the left, MinNode to the right);
	// NaN when no crossing is observed.
	SigmaCrossover float64
}

// at extracts a series mean at the last sweep point ("sufficiently large").
func last(res Result, series string) float64 {
	return res.Points[len(res.Points)-1].Mean[series]
}

// Claims measures the paper's headline numbers on regenerated panels. It
// expects the five figure results in FigureIDs order (e.g. from All).
func Claims(results []Result) (ClaimReport, error) {
	if len(results) != len(FigureIDs) {
		return ClaimReport{}, fmt.Errorf("experiments: got %d results, want %d", len(results), len(FigureIDs))
	}
	byID := make(map[string]Result, len(results))
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, id := range FigureIDs {
		if _, covered := byID[id]; !covered {
			return ClaimReport{}, fmt.Errorf("experiments: missing figure %q", id)
		}
	}
	a, b, c, d, e := byID["fig2a"], byID["fig2b"], byID["fig2c"], byID["fig2d"], byID["fig2e"]

	report := ClaimReport{}
	add := func(id, statement string, paper, measured float64, dir string) {
		holds := measured <= paper
		if dir == ">=" {
			holds = measured >= paper
		}
		report.Claims = append(report.Claims, Claim{
			ID: id, Statement: statement, PaperValue: paper,
			Measured: measured, Holds: holds, Direction: dir,
		})
	}

	// "the total cost obtained by the proposed MCSCEC scheme is less than
	// 0.5% higher than the lower bound" — measured as the worst relative gap
	// across every point of every panel.
	worstGap := 0.0
	for _, r := range results {
		for _, p := range r.Points {
			gap := (p.Mean[SeriesMCSCEC] - p.Mean[SeriesLB]) / p.Mean[SeriesLB]
			if gap > worstGap {
				worstGap = gap
			}
		}
	}
	add("lb-gap", "MCSCEC is <0.5% above the lower bound", 0.005, worstGap, "<=")

	// "the MCSCEC algorithm can reduce the total cost by more than 43%, 18%,
	// and 13%, respectively, when m, k and c_max are sufficiently large" —
	// reduction vs the costliest secure baseline at the largest sweep value
	// of Fig. 2(a)/(b)/(c).
	reduction := func(r Result) float64 {
		worst := math.Max(last(r, SeriesMaxNode), math.Max(last(r, SeriesMinNode), last(r, SeriesRNode)))
		return (worst - last(r, SeriesMCSCEC)) / worst
	}
	add("savings-m", "≥43% cheaper than the worst baseline at large m", 0.43, reduction(a), ">=")
	add("savings-k", "≥18% cheaper than the worst baseline at large k", 0.18, reduction(b), ">=")
	add("savings-cmax", "≥13% cheaper than the worst baseline at large c_max", 0.13, reduction(c), ">=")

	// "the cost only increases less than 26%, 19% and 14%, respectively,
	// even when m, k and μ are sufficiently large" and "no more than 36% and
	// 48% ... when c_max and σ become sufficiently large" — security
	// overhead vs TAw/oS at the largest sweep value.
	overhead := func(r Result) float64 {
		woS := last(r, SeriesTAwoS)
		return (last(r, SeriesMCSCEC) - woS) / woS
	}
	add("overhead-m", "security overhead ≤26% vs TAw/oS at large m", 0.26, overhead(a), "<=")
	add("overhead-k", "security overhead ≤19% vs TAw/oS at large k", 0.19, overhead(b), "<=")
	add("overhead-mu", "security overhead ≤14% vs TAw/oS at large μ", 0.14, overhead(e), "<=")
	add("overhead-cmax", "security overhead ≤36% vs TAw/oS at large c_max", 0.36, overhead(c), "<=")
	add("overhead-sigma", "security overhead ≤48% vs TAw/oS at large σ", 0.48, overhead(d), "<=")

	// Fig. 2(d) crossover: MaxNode beats MinNode at small σ and loses at
	// large σ.
	report.SigmaCrossover = math.NaN()
	for i := 1; i < len(d.Points); i++ {
		prev := d.Points[i-1].Mean[SeriesMaxNode] - d.Points[i-1].Mean[SeriesMinNode]
		cur := d.Points[i].Mean[SeriesMaxNode] - d.Points[i].Mean[SeriesMinNode]
		if prev <= 0 && cur > 0 {
			// Linear interpolation between the bracketing sigmas.
			x0, x1 := d.Points[i-1].X, d.Points[i].X
			report.SigmaCrossover = x0 + (x1-x0)*(-prev)/(cur-prev)
			break
		}
	}
	crossMeasured := 0.0
	if !math.IsNaN(report.SigmaCrossover) {
		crossMeasured = 1
	}
	add("sigma-crossover", "MaxNode and MinNode cross as σ grows (Fig. 2(d))", 1, crossMeasured, ">=")

	return report, nil
}
