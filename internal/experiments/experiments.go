// Package experiments regenerates the paper's evaluation (§V): the five
// panels of Fig. 2 — total cost as a function of m, k, c_max, σ, and μ — and
// the headline claims quoted in §I/§V. Each sweep point averages the total
// cost of six series over many independently sampled device fleets:
//
//	MCSCEC   the proposed optimal allocation (TA1/TA2 agree; TA2 is used)
//	LB       the Theorem 1 lower bound
//	TAw/oS   equal split over the i* cheapest devices, no security
//	MaxNode  r = ⌈m/(k−1)⌉ (widest fleet)
//	MinNode  r = m (two devices)
//	RNode    r uniform in Theorem 2's range
//
// Everything is deterministic given Config.Seed.
package experiments

import (
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/workload"
)

// Series names, in presentation order.
const (
	SeriesMCSCEC  = "MCSCEC"
	SeriesLB      = "LB"
	SeriesTAwoS   = "TAw/oS"
	SeriesMaxNode = "MaxNode"
	SeriesMinNode = "MinNode"
	SeriesRNode   = "RNode"
)

// AllSeries lists every series in presentation order.
var AllSeries = []string{SeriesMCSCEC, SeriesLB, SeriesTAwoS, SeriesMaxNode, SeriesMinNode, SeriesRNode}

// Config parameterizes a run.
type Config struct {
	// Defaults are the fixed parameters (paper: m=5000, k=25, c_max=5, μ=5,
	// σ=1.25, 1000 instances per point).
	Defaults workload.Defaults
	// Seed drives all sampling; identical seeds reproduce identical output.
	Seed uint64
}

// DefaultConfig returns the paper's §V setup.
func DefaultConfig() Config {
	return Config{Defaults: workload.PaperDefaults(), Seed: 20190707}
}

// Point is one sweep position with the mean total cost of each series.
type Point struct {
	// X is the sweep value (m, k, c_max, σ, or μ depending on the figure).
	X float64
	// Mean maps series name to the mean variable cost over all instances.
	Mean map[string]float64
}

// Result is one regenerated figure.
type Result struct {
	// ID is the figure identifier, e.g. "fig2a".
	ID string
	// Title describes the panel.
	Title string
	// XLabel names the sweep parameter.
	XLabel string
	// Points holds one entry per sweep value, in sweep order.
	Points []Point
}

// evalPoint averages every series over cfg.Defaults.Instances fleets drawn
// for one sweep position. pointIdx salts the RNG stream so points are
// independent.
func evalPoint(cfg Config, figSalt uint64, pointIdx, m, k int, dist workload.CostDist) (map[string]float64, error) {
	sums := make(map[string]float64, len(AllSeries))
	n := cfg.Defaults.Instances
	if n < 1 {
		return nil, fmt.Errorf("experiments: %d instances per point", n)
	}
	for inst := 0; inst < n; inst++ {
		rng := workload.RNG(cfg.Seed^figSalt, pointIdx, inst)
		in := workload.Instance(rng, m, k, dist)
		costs, err := solveAll(in, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: point %d instance %d: %w", pointIdx, inst, err)
		}
		for name, c := range costs {
			sums[name] += c
		}
	}
	for name := range sums {
		sums[name] /= float64(n)
	}
	return sums, nil
}

// solveAll runs every series on one instance.
func solveAll(in alloc.Instance, rng *rand.Rand) (map[string]float64, error) {
	out := make(map[string]float64, len(AllSeries))

	opt, err := alloc.TA2(in)
	if err != nil {
		return nil, err
	}
	out[SeriesMCSCEC] = opt.Cost

	lb, err := alloc.LowerBound(in)
	if err != nil {
		return nil, err
	}
	out[SeriesLB] = lb

	for _, s := range []struct {
		name  string
		solve func(alloc.Instance) (alloc.Plan, error)
	}{
		{SeriesTAwoS, alloc.TAWithoutSecurity},
		{SeriesMaxNode, alloc.MaxNode},
		{SeriesMinNode, alloc.MinNode},
	} {
		p, err := s.solve(in)
		if err != nil {
			return nil, err
		}
		out[s.name] = p.Cost
	}

	rp, err := alloc.RNode(in, rng)
	if err != nil {
		return nil, err
	}
	out[SeriesRNode] = rp.Cost
	return out, nil
}
