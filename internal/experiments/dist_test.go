package experiments

import (
	"strings"
	"testing"
)

func TestDistSweepShape(t *testing.T) {
	cfg := quickConfig()
	res, err := DistSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d distributions, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		// The structural ordering holds under every distribution.
		assertOrdering(t, Point{X: 0, Mean: p.Mean})
	}
	// Pareto is the heavy-tail regime: MaxNode (forced to use expensive
	// devices) should trail MCSCEC by a larger factor than under uniform.
	byName := map[string]DistPoint{}
	for _, p := range res.Points {
		byName[p.Dist] = p
	}
	uni := byName["U(1, 5)"]
	par := byName["Pareto(1.5)"]
	uniGap := uni.Mean[SeriesMaxNode] / uni.Mean[SeriesMCSCEC]
	parGap := par.Mean[SeriesMaxNode] / par.Mean[SeriesMCSCEC]
	if parGap <= uniGap {
		t.Fatalf("heavy tails should widen MaxNode's gap: uniform %.2f vs pareto %.2f", uniGap, parGap)
	}
}

func TestWriteDistMarkdown(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 5
	res, err := DistSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var md strings.Builder
	if err := WriteDistMarkdown(&md, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "Pareto(1.5)") {
		t.Fatal("markdown missing distribution rows")
	}
}

func TestDistSweepRejectsZeroInstances(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 0
	if _, err := DistSweep(cfg); err == nil {
		t.Fatal("zero instances should error")
	}
}
