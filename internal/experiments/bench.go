package experiments

import (
	"encoding/json"
	"io"
	"math/rand/v2"
	"runtime"
	"time"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/workload"
)

// BenchResult is one measured micro-benchmark: the hot path named by Name
// at the stated problem size, averaged over Iters runs.
type BenchResult struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	OpsPerS float64 `json:"ops_per_sec"`
}

// BenchReport is the machine-readable benchmark output accumulated under
// results/bench.json so the performance trajectory can be tracked PR over
// PR.
type BenchReport struct {
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	Seed      uint64        `json:"seed"`
	Results   []BenchResult `json:"results"`
}

// benchCase measures fn, which performs one operation per call, over iters
// iterations after one warm-up call.
func benchCase(name string, iters int, fn func()) BenchResult {
	fn() // warm-up: pull code and data into caches
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	ns := float64(elapsed.Nanoseconds()) / float64(iters)
	r := BenchResult{Name: name, Iters: iters, NsPerOp: ns}
	if ns > 0 {
		r.OpsPerS = 1e9 / ns
	}
	return r
}

// Bench measures the pipeline's hot paths — allocation, encoding,
// device-side compute, and decoding — at a representative problem size.
// Everything is deterministic given cfg.Seed; timings of course are not.
func Bench(cfg Config) (BenchReport, error) {
	const m, l, k = 1000, 64, 25
	rep := BenchReport{GoVersion: runtime.Version(), GOARCH: runtime.GOARCH, Seed: cfg.Seed}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xbe7c4))
	f := field.Prime{}
	in := workload.Instance(rng, m, k, workload.Uniform{Max: 5})

	plan, err := alloc.TA1(alloc.Instance{M: m, Costs: in.Costs})
	if err != nil {
		return rep, err
	}
	rep.Results = append(rep.Results, benchCase("allocate/ta1/m=1000,k=25", 200, func() {
		_, _ = alloc.TA1(alloc.Instance{M: m, Costs: in.Costs})
	}))

	scheme, err := coding.New(m, plan.R)
	if err != nil {
		return rep, err
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := coding.Encode[uint64](f, scheme, a, rng)
	if err != nil {
		return rep, err
	}
	rep.Results = append(rep.Results, benchCase("encode/m=1000,l=64", 10, func() {
		_, _ = coding.Encode[uint64](f, scheme, a, rng)
	}))

	x := matrix.RandomVec[uint64](f, rng, l)
	rep.Results = append(rep.Results, benchCase("compute/all-devices/m=1000,l=64", 10, func() {
		_ = enc.ComputeAll(f, x)
	}))

	y := enc.ComputeAll(f, x)
	rep.Results = append(rep.Results, benchCase("decode/m=1000", 100, func() {
		_, _ = coding.Decode[uint64](f, scheme, y)
	}))
	return rep, nil
}

// WriteBenchJSON renders the report as indented JSON.
func WriteBenchJSON(w io.Writer, rep BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
