package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"runtime"
	"time"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
	"github.com/scec/scec/internal/workload"
)

// BenchResult is one measured micro-benchmark: the hot path named by Name
// at the stated problem size, averaged over Iters runs.
type BenchResult struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	OpsPerS float64 `json:"ops_per_sec"`
}

// BenchReport is the machine-readable benchmark output accumulated under
// results/bench.json so the performance trajectory can be tracked PR over
// PR.
type BenchReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// KernelPoolSize is the dense-kernel worker pool size (GOMAXPROCS),
	// recorded so bench numbers carry their parallelism context.
	KernelPoolSize int           `json:"kernel_pool_size"`
	Seed           uint64        `json:"seed"`
	Results        []BenchResult `json:"results"`
}

// benchCase measures fn, which performs one operation per call, over iters
// iterations after one warm-up call. It repeats the timed loop three times
// and reports the fastest repetition: the minimum is the estimate least
// contaminated by scheduler preemption and noisy neighbours (this harness
// runs on shared vCPUs), and therefore the closest to the code's intrinsic
// cost.
func benchCase(name string, iters int, fn func()) BenchResult {
	fn() // warm-up: pull code and data into caches
	const reps = 3
	ns := math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if got := float64(time.Since(start).Nanoseconds()) / float64(iters); got < ns {
			ns = got
		}
	}
	r := BenchResult{Name: name, Iters: iters, NsPerOp: ns}
	if ns > 0 {
		r.OpsPerS = 1e9 / ns
	}
	return r
}

// genericSerial runs fn with the kernel layer pinned to the generic serial
// reference configuration, restoring the previous knobs afterwards. The
// "/generic-serial" bench variants use it to keep the fallback path
// measured (and exercised) alongside the fast path.
func genericSerial(fn func()) {
	spec := matrix.SetSpecializedKernels(false)
	par := matrix.SetParallelKernels(false)
	defer func() {
		matrix.SetSpecializedKernels(spec)
		matrix.SetParallelKernels(par)
	}()
	fn()
}

// Bench measures the pipeline's hot paths — allocation, encoding,
// device-side compute (vector and batch), and decoding — at a
// representative problem size, in the default kernel configuration
// (specialized + parallel) and, for the coded hot paths, in the generic
// serial reference configuration the kernel layer falls back to for
// unknown fields. Everything is deterministic given cfg.Seed; timings of
// course are not.
func Bench(cfg Config) (BenchReport, error) {
	const m, l, k, batchN = 1000, 64, 25, 8
	rep := BenchReport{
		GoVersion:      runtime.Version(),
		GOARCH:         runtime.GOARCH,
		KernelPoolSize: matrix.PoolSize(),
		Seed:           cfg.Seed,
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xbe7c4))
	f := field.Prime{}
	in := workload.Instance(rng, m, k, workload.Uniform{Max: 5})

	plan, err := alloc.TA1(alloc.Instance{M: m, Costs: in.Costs})
	if err != nil {
		return rep, err
	}
	rep.Results = append(rep.Results, benchCase("allocate/ta1/m=1000,k=25", 200, func() {
		_, _ = alloc.TA1(alloc.Instance{M: m, Costs: in.Costs})
	}))

	scheme, err := coding.New(m, plan.R)
	if err != nil {
		return rep, err
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := coding.Encode[uint64](f, scheme, a, rng)
	if err != nil {
		return rep, err
	}
	rep.Results = append(rep.Results, benchCase("encode/m=1000,l=64", 50, func() {
		_, _ = coding.Encode[uint64](f, scheme, a, rng)
	}))
	genericSerial(func() {
		rep.Results = append(rep.Results, benchCase("encode/m=1000,l=64/generic-serial", 10, func() {
			_, _ = coding.Encode[uint64](f, scheme, a, rng)
		}))
	})

	x := matrix.RandomVec[uint64](f, rng, l)
	rep.Results = append(rep.Results, benchCase("compute/all-devices/m=1000,l=64", 50, func() {
		_ = enc.ComputeAll(f, x)
	}))
	genericSerial(func() {
		rep.Results = append(rep.Results, benchCase("compute/all-devices/m=1000,l=64/generic-serial", 10, func() {
			_ = enc.ComputeAll(f, x)
		}))
	})

	xm := matrix.Random[uint64](f, rng, l, batchN)
	rep.Results = append(rep.Results, benchCase("compute/batch/m=1000,l=64,n=8", 20, func() {
		_ = enc.ComputeAllBatch(f, xm)
	}))
	genericSerial(func() {
		rep.Results = append(rep.Results, benchCase("compute/batch/m=1000,l=64,n=8/generic-serial", 5, func() {
			_ = enc.ComputeAllBatch(f, xm)
		}))
	})

	y := enc.ComputeAll(f, x)
	rep.Results = append(rep.Results, benchCase("decode/m=1000", 200, func() {
		_, _ = coding.Decode[uint64](f, scheme, y)
	}))
	ym := enc.ComputeAllBatch(f, xm)
	rep.Results = append(rep.Results, benchCase("decode/batch/m=1000,n=8", 100, func() {
		_, _ = coding.DecodeBatch[uint64](f, scheme, ym)
	}))

	// The flight-recorder journal sits on every hot path (breaker flips,
	// hedge wins, retries), so its publish cost is tracked — and bounded by
	// CheckBench — like a coding kernel.
	jr := flight.New(flight.Options{Metrics: obs.New()})
	rep.Results = append(rep.Results, benchCase("journal/publish", 1_000_000, func() {
		jr.Publish(flight.KindRetry, "bench", 1, 2)
	}))
	return rep, nil
}

// maxJournalPublishNs bounds the journal's per-event publish cost. The
// budget is an always-on tracing primitive's: a clock read, an atomic slot
// claim, and a short critical section — if a change pushes past 100ns the
// journal has stopped being free enough to leave on everywhere.
const maxJournalPublishNs = 100

// CheckBench validates a report for CI consumption: every case must have
// run and produced finite, non-zero throughput. It is the guard behind
// `make bench-check` — a hung or broken kernel path shows up as zero or NaN
// throughput long before anyone reads the numbers.
func CheckBench(rep BenchReport) error {
	if len(rep.Results) == 0 {
		return fmt.Errorf("bench: no results")
	}
	for _, r := range rep.Results {
		if r.Iters <= 0 {
			return fmt.Errorf("bench: %s ran %d iters", r.Name, r.Iters)
		}
		if math.IsNaN(r.NsPerOp) || math.IsInf(r.NsPerOp, 0) || r.NsPerOp <= 0 {
			return fmt.Errorf("bench: %s ns/op = %g, want finite > 0", r.Name, r.NsPerOp)
		}
		if math.IsNaN(r.OpsPerS) || math.IsInf(r.OpsPerS, 0) || r.OpsPerS <= 0 {
			return fmt.Errorf("bench: %s ops/s = %g, want finite > 0", r.Name, r.OpsPerS)
		}
		if r.Name == "journal/publish" && r.NsPerOp > maxJournalPublishNs {
			return fmt.Errorf("bench: %s took %.1f ns/op, budget %d ns (the journal must stay cheap enough to leave on everywhere)",
				r.Name, r.NsPerOp, maxJournalPublishNs)
		}
	}
	return nil
}

// WriteBenchJSON renders the report as indented JSON.
func WriteBenchJSON(w io.Writer, rep BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
