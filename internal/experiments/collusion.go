package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/workload"
)

// CollusionPoint is one measured security level of the t-sweep: the
// TACollusion plan shape and cost plus the measured encode/decode cost of
// the deployed code at that threshold. t = 1 additionally reports the
// Eq. (8) structured tier as the baseline the Cauchy design is priced
// against.
type CollusionPoint struct {
	T int `json:"t"`
	// Scheme names the coding design measured ("eq8" or "collusion").
	Scheme string `json:"scheme"`
	// R is the random-row count the plan selected; Devices its fleet size.
	R       int `json:"r"`
	Devices int `json:"devices"`
	// PlanCost is the allocation's variable provisioning cost Σ V(B_j)·c_j.
	PlanCost float64 `json:"plan_cost"`
	// EncodeNs and DecodeNs are per-operation averages for one encode of the
	// m×l matrix and one decode of a full intermediate vector.
	EncodeNs float64 `json:"encode_ns"`
	DecodeNs float64 `json:"decode_ns"`
}

// CollusionReport is the machine-readable t-sweep recorded under
// results/collusion.json: the security-vs-cost trajectory of promoting the
// collusion tier, tracked PR over PR like bench.json.
type CollusionReport struct {
	M       int              `json:"m"`
	L       int              `json:"l"`
	K       int              `json:"k"`
	Seed    uint64           `json:"seed"`
	Points  []CollusionPoint `json:"points"`
	Version int              `json:"version"`
}

// CollusionSweep measures allocation cost and encode/decode latency as the
// collusion threshold t rises from 1 (with the Eq. (8) scheme as the t = 1
// baseline) on one deterministic fleet. Shapes are kept moderate (m ≈ 400)
// so the sweep runs in CI time while the LU-decode cost difference between
// the tiers is still visible.
func CollusionSweep(cfg Config) (CollusionReport, error) {
	const m, l, k, tMax = 400, 64, 24, 4
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc011))
	in := workload.Instance(rng, m, k, workload.Uniform{Max: 5})
	a := matrix.Random[uint64](f, rng, m, l)
	x := matrix.RandomVec[uint64](f, rng, l)

	rep := CollusionReport{M: m, L: l, K: k, Seed: cfg.Seed, Version: 1}

	measure := func(t int, scheme string, plan alloc.Plan, code coding.Code[uint64]) error {
		enc, err := code.Encode(a, rand.New(rand.NewPCG(cfg.Seed, 0xe11c)))
		if err != nil {
			return err
		}
		y := enc.ComputeAll(f, x)
		encRes := benchCase(fmt.Sprintf("collusion/encode/t=%d/%s", t, scheme), 5, func() {
			_, _ = code.Encode(a, rand.New(rand.NewPCG(cfg.Seed, 0xe11c)))
		})
		decRes := benchCase(fmt.Sprintf("collusion/decode/t=%d/%s", t, scheme), 20, func() {
			_, _ = code.Decode(y)
		})
		rep.Points = append(rep.Points, CollusionPoint{
			T: t, Scheme: scheme, R: plan.R, Devices: code.Devices(),
			PlanCost: plan.Cost, EncodeNs: encRes.NsPerOp, DecodeNs: decRes.NsPerOp,
		})
		return nil
	}

	// t = 1 baseline: the structured Eq. (8) tier under TA1.
	ta1, err := alloc.TA1(in)
	if err != nil {
		return rep, err
	}
	eq8, err := coding.NewStructured[uint64](f, m, ta1.R)
	if err != nil {
		return rep, err
	}
	if err := measure(1, "eq8", ta1, eq8); err != nil {
		return rep, err
	}

	for t := 1; t <= tMax; t++ {
		plan, err := alloc.TACollusion(in, t)
		if err != nil {
			return rep, err
		}
		rows := make([]int, plan.I)
		for j, as := range plan.Assignments {
			rows[j] = as.Rows
		}
		code, err := coding.NewCollusion[uint64](f, m, plan.R, t, rows)
		if err != nil {
			return rep, err
		}
		if err := measure(t, "collusion", plan, code); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// WriteCollusionJSON writes the report as indented JSON.
func WriteCollusionJSON(w io.Writer, rep CollusionReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// CheckCollusion is the CI guard over a sweep: every point must be finite
// and positive, the plan cost must be non-decreasing in t (security is never
// free), and the t = 1 Cauchy plan must match the structured baseline's cost
// (the sweep degenerates to TA1's shape there).
func CheckCollusion(rep CollusionReport) error {
	if len(rep.Points) < 2 {
		return fmt.Errorf("collusion sweep produced %d points", len(rep.Points))
	}
	var base, firstCauchy *CollusionPoint
	prevCost := -1.0
	for i := range rep.Points {
		p := &rep.Points[i]
		if p.EncodeNs <= 0 || p.DecodeNs <= 0 || p.PlanCost <= 0 || p.R < 1 || p.Devices < 2 {
			return fmt.Errorf("collusion point t=%d/%s is degenerate: %+v", p.T, p.Scheme, *p)
		}
		switch p.Scheme {
		case "eq8":
			base = p
		case "collusion":
			if firstCauchy == nil {
				firstCauchy = p
			}
			if p.PlanCost < prevCost-1e-6 {
				return fmt.Errorf("plan cost decreased from %g to %g as t rose to %d", prevCost, p.PlanCost, p.T)
			}
			prevCost = p.PlanCost
		default:
			return fmt.Errorf("unknown scheme %q in sweep", p.Scheme)
		}
	}
	if base == nil || firstCauchy == nil {
		return fmt.Errorf("sweep is missing the eq8 baseline or the Cauchy points")
	}
	if d := firstCauchy.PlanCost - base.PlanCost; d > 1e-6 || d < -1e-6 {
		return fmt.Errorf("t = 1 Cauchy plan costs %g, structured baseline %g; TACollusion should degenerate to TA1", firstCauchy.PlanCost, base.PlanCost)
	}
	return nil
}
