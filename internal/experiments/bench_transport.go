package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/transport"
)

// Transport bench case names. The CI guard in CheckTransportBench looks
// entries up by these exact strings, so they are constants rather than
// inline literals.
const (
	benchFrameV3   = "transport/frame/compute/n=64/v3"
	benchFrameGob  = "transport/frame/compute/n=64/gob"
	benchRTTPingV3 = "transport/rtt/ping/v3"
	benchRTTPingGb = "transport/rtt/ping/gob"
	benchRTTBigV3  = "transport/rtt/store/m=1000,l=64/v3"
	benchRTTBigGob = "transport/rtt/store/m=1000,l=64/gob"
	benchQPSMuxV3  = "transport/qps/ping/mux=64/v3"
	benchQPSGob    = "transport/qps/ping/conns=64/gob"
)

// benchParallel measures fn executed by workers goroutines perWorker times
// each, reporting aggregate throughput (NsPerOp is wall time divided by
// total operations, so OpsPerS is the combined QPS). Like benchCase it
// keeps the fastest of three repetitions.
func benchParallel(name string, workers, perWorker int, fn func()) BenchResult {
	fn() // warm-up
	const reps = 3
	total := workers * perWorker
	ns := math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					fn()
				}
			}()
		}
		wg.Wait()
		if got := float64(time.Since(start).Nanoseconds()) / float64(total); got < ns {
			ns = got
		}
	}
	r := BenchResult{Name: name, Iters: total, NsPerOp: ns}
	if ns > 0 {
		r.OpsPerS = 1e9 / ns
	}
	return r
}

// BenchTransport measures the v3 wire protocol against the legacy gob
// codec: pure in-memory frame encode/decode, single-stream loopback RTT for
// a tiny (ping) and a bulk (1000×64 coded-block store) request, and 64-way
// concurrent QPS over one pooled connection (v3 multiplexes all 64 streams
// onto a single socket; gob races 64 pooled connections). One dual-protocol
// device server serves both clients, so the comparison shares every layer
// except the codec.
func BenchTransport(cfg Config) (BenchReport, error) {
	rep := newBenchReport(cfg)
	fail := func(err error) (BenchReport, error) { return rep, err }

	// Pure protocol overhead: encode+decode in memory, no sockets.
	for _, pc := range []struct {
		name  string
		mk    func(int) (func() error, error)
		iters int
	}{
		{benchFrameV3, transport.FrameBench, 100000},
		{benchFrameGob, transport.GobFrameBench, 20000},
	} {
		fn, err := pc.mk(64)
		if err != nil {
			return fail(err)
		}
		var ferr error
		rep.Results = append(rep.Results, benchCase(pc.name, pc.iters, func() {
			if err := fn(); err != nil && ferr == nil {
				ferr = err
			}
		}))
		if ferr != nil {
			return fail(ferr)
		}
	}

	f := field.Prime{}
	srv, err := transport.NewDeviceServer[uint64](f, "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	ctx := context.Background()

	// A paper-sized 1000×64 coded block (512 KiB of field elements): the
	// store RPC is the paper's upload phase and is pure data movement, so
	// its RTT isolates codec cost from compute cost.
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x77a9e))
	block := matrix.Random[uint64](f, rng, 1000, 64)

	clients := []struct {
		label  string
		proto  transport.Proto
		ping   string
		bulk   string
		qps    string
		qpsN   int
		perOp  int
		pingIt int
		bulkIt int
	}{
		{"v3", transport.ProtoV3, benchRTTPingV3, benchRTTBigV3, benchQPSMuxV3, 64, 400, 3000, 2000},
		{"gob", transport.ProtoGob, benchRTTPingGb, benchRTTBigGob, benchQPSGob, 64, 100, 3000, 200},
	}
	for _, tc := range clients {
		client := transport.Client[uint64]{
			F: f, Timeout: 30 * time.Second,
			Proto: tc.proto, Pool: transport.NewPool[uint64](),
		}
		cloud := transport.Cloud[uint64]{
			Timeout: 30 * time.Second,
			Proto:   tc.proto, Pool: transport.NewPool[uint64](),
		}
		var rpcErr error
		keep := func(err error) {
			if err != nil && rpcErr == nil {
				rpcErr = err
			}
		}
		rep.Results = append(rep.Results, benchCase(tc.ping, tc.pingIt, func() {
			keep(client.Ping(ctx, addr))
		}))
		rep.Results = append(rep.Results, benchCase(tc.bulk, tc.bulkIt, func() {
			keep(cloud.Store(ctx, addr, block))
		}))
		rep.Results = append(rep.Results, benchParallel(tc.qps, tc.qpsN, tc.perOp, func() {
			keep(client.Ping(ctx, addr))
		}))
		if rpcErr != nil {
			return fail(fmt.Errorf("bench: %s rpc: %w", tc.label, rpcErr))
		}
	}
	return rep, nil
}

// newBenchReport stamps the runtime metadata shared by all bench reports.
func newBenchReport(cfg Config) BenchReport {
	return BenchReport{
		GoVersion:      runtime.Version(),
		GOARCH:         runtime.GOARCH,
		KernelPoolSize: matrix.PoolSize(),
		Seed:           cfg.Seed,
	}
}

// CheckTransportBench is the regression guard behind `make bench-transport`:
// beyond CheckBench's finiteness checks it enforces the protocol's reason
// to exist, with CI-lenient thresholds (the committed results/bench.json
// shows the real margins — ≥5× bulk RTT and ≥100k QPS on idle hardware,
// while CI machines are noisy and shared):
//
//   - in-memory v3 frame round trip under 2 µs (target: sub-µs)
//   - bulk store RTT at least 2× faster than gob (target: ≥5×)
//   - ≥50k QPS on one multiplexed connection (target: ≥100k)
func CheckTransportBench(rep BenchReport) error {
	if err := CheckBench(rep); err != nil {
		return err
	}
	byName := make(map[string]BenchResult, len(rep.Results))
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	need := func(name string) (BenchResult, error) {
		r, ok := byName[name]
		if !ok {
			return r, fmt.Errorf("bench: missing transport case %q", name)
		}
		return r, nil
	}
	frame, err := need(benchFrameV3)
	if err != nil {
		return err
	}
	if frame.NsPerOp > 2000 {
		return fmt.Errorf("bench: %s = %.0f ns/op, want < 2000 (protocol overhead regressed)", frame.Name, frame.NsPerOp)
	}
	v3, err := need(benchRTTBigV3)
	if err != nil {
		return err
	}
	gob, err := need(benchRTTBigGob)
	if err != nil {
		return err
	}
	if ratio := gob.NsPerOp / v3.NsPerOp; ratio < 2 {
		return fmt.Errorf("bench: bulk RTT v3 is only %.2fx faster than gob (%0.f vs %0.f ns/op), want >= 2x", ratio, v3.NsPerOp, gob.NsPerOp)
	}
	qps, err := need(benchQPSMuxV3)
	if err != nil {
		return err
	}
	if qps.OpsPerS < 50000 {
		return fmt.Errorf("bench: %s = %.0f QPS, want >= 50000", qps.Name, qps.OpsPerS)
	}
	return nil
}

// LoadBenchJSON reads a previously written results/bench.json. A missing
// file is not an error: it returns an empty report for MergeBench to fill.
func LoadBenchJSON(path string) (BenchReport, error) {
	var rep BenchReport
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return rep, nil
}

// MergeBench overlays add's results onto base by case name — matching
// names are replaced in place, new names append — so `-fig bench-transport`
// refreshes the transport entries of results/bench.json without
// re-measuring (or clobbering) the kernel cases. Metadata comes from add,
// the fresher run.
func MergeBench(base, add BenchReport) BenchReport {
	out := add
	out.Results = nil
	idx := make(map[string]int, len(base.Results))
	for _, r := range base.Results {
		idx[r.Name] = len(out.Results)
		out.Results = append(out.Results, r)
	}
	for _, r := range add.Results {
		if i, ok := idx[r.Name]; ok {
			out.Results[i] = r
		} else {
			out.Results = append(out.Results, r)
		}
	}
	return out
}
