package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/scec/scec/internal/workload"
)

// quickConfig shrinks the run so the full suite stays fast; shape assertions
// still hold at this scale.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Defaults.M = 500
	cfg.Defaults.Instances = 40
	return cfg
}

func TestFigureUnknownID(t *testing.T) {
	if _, err := Figure(quickConfig(), "fig9z"); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestFig2aShape(t *testing.T) {
	cfg := quickConfig()
	res, err := Fig2a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(SweepM) {
		t.Fatalf("%d points, want %d", len(res.Points), len(SweepM))
	}
	for _, p := range res.Points {
		for _, s := range AllSeries {
			if _, covered := p.Mean[s]; !covered {
				t.Fatalf("point %g missing series %s", p.X, s)
			}
		}
		assertOrdering(t, p)
	}
	// Cost grows with m for every series.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Mean[SeriesMCSCEC] <= res.Points[i-1].Mean[SeriesMCSCEC] {
			t.Fatalf("MCSCEC cost should grow with m: %v -> %v",
				res.Points[i-1].Mean[SeriesMCSCEC], res.Points[i].Mean[SeriesMCSCEC])
		}
	}
}

// assertOrdering checks the structural relations every point must satisfy:
// TAw/oS ≤ LB ≤ MCSCEC ≤ each secure baseline.
func assertOrdering(t *testing.T, p Point) {
	t.Helper()
	const eps = 1e-9
	if p.Mean[SeriesLB] > p.Mean[SeriesMCSCEC]+eps {
		t.Fatalf("x=%g: LB %g above MCSCEC %g", p.X, p.Mean[SeriesLB], p.Mean[SeriesMCSCEC])
	}
	if p.Mean[SeriesTAwoS] > p.Mean[SeriesMCSCEC]+eps {
		t.Fatalf("x=%g: TAw/oS %g above MCSCEC %g", p.X, p.Mean[SeriesTAwoS], p.Mean[SeriesMCSCEC])
	}
	for _, s := range []string{SeriesMaxNode, SeriesMinNode, SeriesRNode} {
		if p.Mean[s]+eps < p.Mean[SeriesMCSCEC] {
			t.Fatalf("x=%g: %s %g below optimal %g", p.X, s, p.Mean[s], p.Mean[SeriesMCSCEC])
		}
	}
}

func TestFig2dCrossover(t *testing.T) {
	cfg := quickConfig()
	res, err := Fig2d(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, lastPt := res.Points[0], res.Points[len(res.Points)-1]
	// σ = 0.01: near-homogeneous costs, spreading wide wins.
	if first.Mean[SeriesMaxNode] >= first.Mean[SeriesMinNode] {
		t.Fatalf("at σ=%g MaxNode (%g) should beat MinNode (%g)",
			first.X, first.Mean[SeriesMaxNode], first.Mean[SeriesMinNode])
	}
	// σ = 2.5: heterogeneous costs, concentrating on the cheap pair wins.
	if lastPt.Mean[SeriesMinNode] >= lastPt.Mean[SeriesMaxNode] {
		t.Fatalf("at σ=%g MinNode (%g) should beat MaxNode (%g)",
			lastPt.X, lastPt.Mean[SeriesMinNode], lastPt.Mean[SeriesMaxNode])
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 10
	a, err := Fig2c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		for _, s := range AllSeries {
			if a.Points[i].Mean[s] != b.Points[i].Mean[s] {
				t.Fatalf("point %d series %s differs across identical runs", i, s)
			}
		}
	}
	cfg.Seed++
	c, err := Fig2c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Points[0].Mean[SeriesMCSCEC] == a.Points[0].Mean[SeriesMCSCEC] {
		t.Fatal("different seeds should shift the sampled fleets")
	}
}

func TestClaimsOnQuickRun(t *testing.T) {
	cfg := quickConfig()
	results, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Claims(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Claims) != 10 {
		t.Fatalf("%d claims, want 10", len(rep.Claims))
	}
	byID := map[string]Claim{}
	for _, c := range rep.Claims {
		byID[c.ID] = c
	}
	// The LB gap claim must hold at any scale: it follows from Theorem 1 +
	// Corollary 1 regardless of sweep sizes.
	if g := byID["lb-gap"]; !g.Holds {
		t.Fatalf("lb-gap measured %.4f%% exceeds 0.5%%", 100*g.Measured)
	}
	// The crossover claim is structural too.
	if cr := byID["sigma-crossover"]; !cr.Holds || math.IsNaN(rep.SigmaCrossover) {
		t.Fatalf("sigma crossover not observed (%v)", rep.SigmaCrossover)
	}
	if rep.SigmaCrossover <= 0.01 || rep.SigmaCrossover >= 2.5 {
		t.Fatalf("crossover σ = %g outside the sweep interior", rep.SigmaCrossover)
	}
}

func TestClaimsInputValidation(t *testing.T) {
	if _, err := Claims(nil); err == nil {
		t.Fatal("missing results should error")
	}
	bogus := make([]Result, len(FigureIDs))
	if _, err := Claims(bogus); err == nil {
		t.Fatal("results with wrong IDs should error")
	}
}

func TestRenderCSVAndMarkdown(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 5
	res, err := Fig2e(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var csv strings.Builder
	if err := WriteCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(SweepMu) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(SweepMu))
	}
	if !strings.HasPrefix(lines[0], "mu,MCSCEC,LB,") {
		t.Fatalf("CSV header = %q", lines[0])
	}

	var md strings.Builder
	if err := WriteMarkdown(&md, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| mu | MCSCEC |") {
		t.Fatalf("markdown header missing:\n%s", md.String())
	}

	results, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Claims(results)
	if err != nil {
		t.Fatal(err)
	}
	var cm strings.Builder
	if err := WriteClaims(&cm, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cm.String(), "Headline claims") {
		t.Fatal("claims table missing title")
	}
}

func TestEvalPointRejectsZeroInstances(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 0
	if _, err := evalPoint(cfg, 1, 0, 100, 10, workload.Uniform{Max: 5}); err == nil {
		t.Fatal("zero instances should error")
	}
}
