package experiments

import (
	"strings"
	"testing"
)

func TestRSweepShape(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 25
	res, err := RSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty sweep")
	}
	// r ranges from ⌈m/(k−1)⌉ to m.
	lo := (res.M + res.K - 2) / (res.K - 1)
	if res.Points[0].R != lo || res.Points[len(res.Points)-1].R != res.M {
		t.Fatalf("r range [%d, %d], want [%d, %d]",
			res.Points[0].R, res.Points[len(res.Points)-1].R, lo, res.M)
	}

	// Per-fleet unimodality is proven in Theorem 4 and tested in
	// internal/alloc; the *mean* curve satisfies weaker but still telling
	// properties. First, every point of the mean curve dominates the mean
	// per-fleet optimum (each fleet's c^(r) is ≥ its own minimum), and the
	// curve minimum is close to it.
	minIdx := 0
	for i, p := range res.Points {
		if p.MeanCost < res.Points[minIdx].MeanCost {
			minIdx = i
		}
		if p.MeanCost < res.MeanOptimal-1e-6 {
			t.Fatalf("mean c^(%d) = %g below the mean optimum %g", p.R, p.MeanCost, res.MeanOptimal)
		}
	}
	if res.Points[minIdx].MeanCost > 1.10*res.MeanOptimal {
		t.Fatalf("curve minimum %g far above mean TA2 cost %g", res.Points[minIdx].MeanCost, res.MeanOptimal)
	}
	// Second, r = m (the MinNode corner) is strictly worse than the minimum:
	// the ascent phase is visible in the mean.
	if lastCost := res.Points[len(res.Points)-1].MeanCost; lastCost <= res.Points[minIdx].MeanCost {
		t.Fatalf("mean cost at r=m (%g) should exceed the curve minimum (%g)", lastCost, res.Points[minIdx].MeanCost)
	}
	if res.MeanLB > res.MeanOptimal+1e-9 {
		t.Fatal("lower bound above the optimum")
	}
	if res.MeanRStar < float64(res.Points[0].R) || res.MeanRStar > float64(res.M) {
		t.Fatalf("mean r* = %g outside the admissible range", res.MeanRStar)
	}
}

func TestRSweepRendering(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 5
	res, err := RSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := WriteRSweepCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "r,mean_cost\n") {
		t.Fatalf("csv header missing: %q", csv.String()[:30])
	}
	var md strings.Builder
	if err := WriteRSweepMarkdown(&md, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "unimodal") {
		t.Fatal("markdown summary missing")
	}
}

func TestRSweepRejectsZeroInstances(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 0
	if _, err := RSweep(cfg); err == nil {
		t.Fatal("zero instances should error")
	}
}
