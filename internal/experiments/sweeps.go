package experiments

import (
	"fmt"

	"github.com/scec/scec/internal/workload"
)

// Default sweep grids. The paper plots m up to 10^4 rows, k up to a few
// dozen devices, c_max up to 5-and-beyond under U(1, c_max), σ from "almost
// homogeneous" (0.01) to 2.5, and μ around 5.
var (
	SweepM     = []int{100, 200, 500, 1000, 2000, 5000, 10000}
	SweepK     = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	SweepCMax  = []float64{2, 3, 4, 5, 6, 7, 8, 9, 10}
	SweepSigma = []float64{0.01, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75, 2, 2.25, 2.5}
	SweepMu    = []float64{2, 3, 4, 5, 6, 7, 8, 9, 10}
)

// figure salts keep the five panels on independent RNG streams.
const (
	saltFig2a = 0xa1
	saltFig2b = 0xb2
	saltFig2c = 0xc3
	saltFig2d = 0xd4
	saltFig2e = 0xe5
)

// Fig2a regenerates Fig. 2(a): total cost vs m under U(1, c_max).
func Fig2a(cfg Config) (Result, error) {
	d := cfg.Defaults
	res := Result{ID: "fig2a", Title: "Total cost vs number of data rows m", XLabel: "m"}
	for idx, m := range SweepM {
		mean, err := evalPoint(cfg, saltFig2a, idx, m, d.K, workload.Uniform{Max: d.CMax})
		if err != nil {
			return Result{}, fmt.Errorf("fig2a m=%d: %w", m, err)
		}
		res.Points = append(res.Points, Point{X: float64(m), Mean: mean})
	}
	return res, nil
}

// Fig2b regenerates Fig. 2(b): total cost vs number of edge devices k.
func Fig2b(cfg Config) (Result, error) {
	d := cfg.Defaults
	res := Result{ID: "fig2b", Title: "Total cost vs number of edge devices k", XLabel: "k"}
	for idx, k := range SweepK {
		mean, err := evalPoint(cfg, saltFig2b, idx, d.M, k, workload.Uniform{Max: d.CMax})
		if err != nil {
			return Result{}, fmt.Errorf("fig2b k=%d: %w", k, err)
		}
		res.Points = append(res.Points, Point{X: float64(k), Mean: mean})
	}
	return res, nil
}

// Fig2c regenerates Fig. 2(c): total cost vs c_max under U(1, c_max).
func Fig2c(cfg Config) (Result, error) {
	d := cfg.Defaults
	res := Result{ID: "fig2c", Title: "Total cost vs maximum unit cost c_max", XLabel: "c_max"}
	for idx, cmax := range SweepCMax {
		mean, err := evalPoint(cfg, saltFig2c, idx, d.M, d.K, workload.Uniform{Max: cmax})
		if err != nil {
			return Result{}, fmt.Errorf("fig2c c_max=%g: %w", cmax, err)
		}
		res.Points = append(res.Points, Point{X: cmax, Mean: mean})
	}
	return res, nil
}

// Fig2d regenerates Fig. 2(d): total cost vs σ under N(μ, σ²).
func Fig2d(cfg Config) (Result, error) {
	d := cfg.Defaults
	res := Result{ID: "fig2d", Title: "Total cost vs cost deviation sigma", XLabel: "sigma"}
	for idx, sigma := range SweepSigma {
		mean, err := evalPoint(cfg, saltFig2d, idx, d.M, d.K, workload.Normal{Mu: d.Mu, Sigma: sigma})
		if err != nil {
			return Result{}, fmt.Errorf("fig2d sigma=%g: %w", sigma, err)
		}
		res.Points = append(res.Points, Point{X: sigma, Mean: mean})
	}
	return res, nil
}

// Fig2e regenerates Fig. 2(e): total cost vs μ under N(μ, σ²).
func Fig2e(cfg Config) (Result, error) {
	d := cfg.Defaults
	res := Result{ID: "fig2e", Title: "Total cost vs mean unit cost mu", XLabel: "mu"}
	for idx, mu := range SweepMu {
		mean, err := evalPoint(cfg, saltFig2e, idx, d.M, d.K, workload.Normal{Mu: mu, Sigma: d.Sigma})
		if err != nil {
			return Result{}, fmt.Errorf("fig2e mu=%g: %w", mu, err)
		}
		res.Points = append(res.Points, Point{X: mu, Mean: mean})
	}
	return res, nil
}

// Figure runs one panel by ID ("fig2a" … "fig2e").
func Figure(cfg Config, id string) (Result, error) {
	switch id {
	case "fig2a":
		return Fig2a(cfg)
	case "fig2b":
		return Fig2b(cfg)
	case "fig2c":
		return Fig2c(cfg)
	case "fig2d":
		return Fig2d(cfg)
	case "fig2e":
		return Fig2e(cfg)
	default:
		return Result{}, fmt.Errorf("experiments: unknown figure %q", id)
	}
}

// FigureIDs lists every panel in order.
var FigureIDs = []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig2e"}

// All regenerates every panel.
func All(cfg Config) ([]Result, error) {
	out := make([]Result, 0, len(FigureIDs))
	for _, id := range FigureIDs {
		r, err := Figure(cfg, id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
