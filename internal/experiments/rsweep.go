package experiments

import (
	"fmt"
	"io"
	"strconv"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/workload"
)

// RPoint is one position on the c^(r) ablation curve.
type RPoint struct {
	// R is the number of random rows.
	R int
	// MeanCost averages the Lemma 2 shape cost at this r over all fleets.
	MeanCost float64
}

// RSweepResult is the c^(r) ablation: the cost curve over every admissible
// r, plus the optimum and lower bound for reference.
type RSweepResult struct {
	// M and K are the instance dimensions swept.
	M, K int
	// Points traces mean c^(r) for r = ⌈m/(k−1)⌉ … m.
	Points []RPoint
	// MeanOptimal is the mean TA2 cost (the curve's minimum).
	MeanOptimal float64
	// MeanLB is the mean Theorem 1 lower bound.
	MeanLB float64
	// MeanRStar is the mean optimal r.
	MeanRStar float64
}

const saltRSweep = 0x52

// RSweep regenerates the ablation behind Theorem 4: the total cost as a
// function of the number of random rows r, averaged over sampled fleets.
// The curve is unimodal — it falls until r ≈ m/(i*−1) and rises after —
// which is exactly why TA1 can jump straight to the optimum. Uses m = 200
// (scaled down from the §V default so the full curve stays readable) and
// the configured k and U(1, c_max) costs.
func RSweep(cfg Config) (RSweepResult, error) {
	d := cfg.Defaults
	m := 200
	k := d.K
	res := RSweepResult{M: m, K: k}

	n := d.Instances
	if n < 1 {
		return RSweepResult{}, fmt.Errorf("experiments: %d instances per point", n)
	}
	lo := (m + k - 2) / (k - 1)
	sums := make([]float64, m-lo+1)
	for inst := 0; inst < n; inst++ {
		rng := workload.RNG(cfg.Seed^saltRSweep, 0, inst)
		in := workload.Instance(rng, m, k, workload.Uniform{Max: d.CMax})
		for r := lo; r <= m; r++ {
			p, err := alloc.PlanForR(in, r)
			if err != nil {
				return RSweepResult{}, fmt.Errorf("experiments: r=%d: %w", r, err)
			}
			sums[r-lo] += p.Cost
		}
		opt, err := alloc.TA2(in)
		if err != nil {
			return RSweepResult{}, err
		}
		lb, err := alloc.LowerBound(in)
		if err != nil {
			return RSweepResult{}, err
		}
		res.MeanOptimal += opt.Cost / float64(n)
		res.MeanLB += lb / float64(n)
		res.MeanRStar += float64(opt.R) / float64(n)
	}
	res.Points = make([]RPoint, len(sums))
	for i, s := range sums {
		res.Points[i] = RPoint{R: lo + i, MeanCost: s / float64(n)}
	}
	return res, nil
}

// WriteRSweepCSV renders the ablation curve as CSV.
func WriteRSweepCSV(w io.Writer, res RSweepResult) error {
	if _, err := fmt.Fprintln(w, "r,mean_cost"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "%d,%s\n", p.R, strconv.FormatFloat(p.MeanCost, 'f', 2, 64)); err != nil {
			return err
		}
	}
	return nil
}

// WriteRSweepMarkdown renders a summary of the ablation (the full curve has
// hundreds of points; the summary reports the endpoints, the minimum, and
// the reference values).
func WriteRSweepMarkdown(w io.Writer, res RSweepResult) error {
	minPt := res.Points[0]
	for _, p := range res.Points {
		if p.MeanCost < minPt.MeanCost {
			minPt = p
		}
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	_, err := fmt.Fprintf(w, `### rsweep — cost vs number of random rows r (m=%d, k=%d)

| point | r | mean cost |
|---|---|---|
| smallest admissible r | %d | %.1f |
| curve minimum | %d | %.1f |
| largest admissible r (= m) | %d | %.1f |

mean optimal cost (TA2): %.1f at mean r* = %.1f; mean lower bound: %.1f.
The curve is unimodal: it falls to the minimum and rises after (Theorem 4).

`, res.M, res.K, first.R, first.MeanCost, minPt.R, minPt.MeanCost, last.R, last.MeanCost,
		res.MeanOptimal, res.MeanRStar, res.MeanLB)
	return err
}
