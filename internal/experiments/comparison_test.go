package experiments

import (
	"strings"
	"testing"
)

func TestComparisonShape(t *testing.T) {
	cfg := quickConfig()
	res, err := Comparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(res.Rows))
	}
	byName := map[string]ComparisonRow{}
	for _, r := range res.Rows {
		byName[r.Scheme] = r
	}
	opt := byName["MCSCEC (this paper)"]
	woS := byName["TAw/oS (no security)"]
	pmTight := byName["PolyMask t=1, n=2 (tight)"]
	pmSpare := byName["PolyMask t=1, n=4 (2 spares)"]

	if woS.MeanCost > opt.MeanCost {
		t.Fatal("dropping security cannot cost more")
	}
	// The paper's positioning: prior secure schemes ignore total resource
	// usage — even their best case (tight fleet, cheapest devices) costs
	// more than the optimized MCSCEC.
	if pmTight.MeanCost <= opt.MeanCost {
		t.Fatalf("tight PolyMask (%.0f) should exceed MCSCEC (%.0f)", pmTight.MeanCost, opt.MeanCost)
	}
	if pmSpare.MeanCost <= pmTight.MeanCost {
		t.Fatal("provisioning spares must cost more than the tight fleet")
	}
	// Row accounting.
	if pmTight.TotalRows != 2*res.M || pmSpare.TotalRows != 4*res.M {
		t.Fatalf("polymask rows = %d / %d", pmTight.TotalRows, pmSpare.TotalRows)
	}
	if opt.TotalRows <= res.M || opt.TotalRows >= 2*res.M {
		t.Fatalf("MCSCEC rows = %d, want m < rows < 2m", opt.TotalRows)
	}
	// Straggler columns.
	if pmSpare.Stragglers != 2 || opt.Stragglers != 0 {
		t.Fatal("straggler tolerances wrong")
	}
}

func TestWriteComparisonMarkdown(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 5
	res, err := Comparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var md strings.Builder
	if err := WriteComparisonMarkdown(&md, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "vs MCSCEC") {
		t.Fatal("markdown header missing")
	}
}

func TestComparisonRejectsZeroInstances(t *testing.T) {
	cfg := quickConfig()
	cfg.Defaults.Instances = 0
	if _, err := Comparison(cfg); err == nil {
		t.Fatal("zero instances should error")
	}
}
