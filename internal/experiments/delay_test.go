package experiments

import (
	"strings"
	"testing"
)

func TestDelaySweepShape(t *testing.T) {
	res, err := DelaySweep(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("%d cells, want 9 (3 replication factors × 3 straggler probs)", len(res.Points))
	}

	byCell := map[[2]int]DelayPoint{}
	for _, p := range res.Points {
		byCell[[2]int{p.Replicas, int(p.StragglerProb * 10)}] = p
	}

	// Replication lifts the success rate under the fixed failure model.
	for _, ps := range []int{0, 2, 5} {
		r1, r3 := byCell[[2]int{1, ps}], byCell[[2]int{3, ps}]
		if r3.SuccessRate < r1.SuccessRate {
			t.Fatalf("straggle=%d: success rate fell with replication: %g -> %g", ps, r1.SuccessRate, r3.SuccessRate)
		}
	}
	// Triple replication should be near-perfect at 3% per-replica failures:
	// the per-block failure probability is (0.03)³ ≈ 3e-5.
	if byCell[[2]int{3, 0}].SuccessRate < 0.99 {
		t.Fatalf("3-way replication success rate = %g, want ≥ 0.99", byCell[[2]int{3, 0}].SuccessRate)
	}
	// With a 50% straggler rate, replication should shorten mean completion
	// (the user consumes the fastest replica).
	r1, r3 := byCell[[2]int{1, 5}], byCell[[2]int{3, 5}]
	if r1.SuccessRate > 0 && r3.SuccessRate > 0 && r3.MeanCompletion >= r1.MeanCompletion {
		t.Fatalf("replication should mask stragglers: %v (x1) vs %v (x3)", r1.MeanCompletion, r3.MeanCompletion)
	}
	// Storage overhead equals the replication factor.
	for _, p := range res.Points {
		if p.SuccessRate > 0 && p.StorageOverhead != float64(p.Replicas) {
			t.Fatalf("overhead %g != replicas %d", p.StorageOverhead, p.Replicas)
		}
	}
}

func TestWriteDelayMarkdown(t *testing.T) {
	res, err := DelaySweep(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var md strings.Builder
	if err := WriteDelayMarkdown(&md, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "replication vs stragglers") {
		t.Fatal("markdown missing title")
	}
	if strings.Count(md.String(), "\n| ") < 9 {
		t.Fatalf("markdown should contain 9 data rows:\n%s", md.String())
	}
}
