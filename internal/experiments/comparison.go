package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/workload"
)

// ComparisonRow is one scheme in the related-work cost comparison.
type ComparisonRow struct {
	// Scheme names the design.
	Scheme string
	// TotalRows is the fleet-wide number of coded rows provisioned.
	TotalRows int
	// Devices is how many devices participate.
	Devices int
	// MeanCost is the mean unit-cost objective Σ_j rows_j·c_j.
	MeanCost float64
	// Stragglers is how many non-responding devices the scheme tolerates.
	Stragglers int
	// Collusion is the coalition size the scheme stays secure against.
	Collusion int
}

// ComparisonResult is the full related-work table.
type ComparisonResult struct {
	M, K      int
	Instances int
	Rows      []ComparisonRow
}

const saltComparison = 0xc0de

// Comparison prices the MCSCEC design against the related-work approaches
// the paper positions itself against (§I): polynomial masking ([8]–[10]
// style Shamir shares, where every device stores the whole masked matrix)
// and plain replication without security (TAw/oS). For polynomial masking
// two provisioning levels are priced: the minimal fleet (n = t+1, no
// straggler slack) and a fleet with two spare devices (n = t+3).
//
// All schemes are priced on the same sampled fleets with the paper's unit
// cost model; the polynomial-masking rows are m per device on the cheapest
// n devices (its best case).
func Comparison(cfg Config) (ComparisonResult, error) {
	d := cfg.Defaults
	m := 1000 // scaled from the §V default: the contrast is ratio-based
	n := d.Instances
	if n < 1 {
		return ComparisonResult{}, fmt.Errorf("experiments: %d instances per point", n)
	}
	res := ComparisonResult{M: m, K: d.K, Instances: n}

	type acc struct {
		cost  float64
		rows  int
		devs  int
		strag int
		coll  int
	}
	accs := map[string]*acc{
		"MCSCEC (this paper)":          {coll: 1},
		"TAw/oS (no security)":         {},
		"PolyMask t=1, n=2 (tight)":    {coll: 1},
		"PolyMask t=1, n=4 (2 spares)": {coll: 1, strag: 2},
	}
	order := []string{"MCSCEC (this paper)", "TAw/oS (no security)", "PolyMask t=1, n=2 (tight)", "PolyMask t=1, n=4 (2 spares)"}

	for inst := 0; inst < n; inst++ {
		rng := workload.RNG(cfg.Seed^saltComparison, 0, inst)
		in := workload.Instance(rng, m, d.K, workload.Uniform{Max: d.CMax})
		sorted := append([]float64(nil), in.Costs...)
		sort.Float64s(sorted)

		opt, err := alloc.TA2(in)
		if err != nil {
			return ComparisonResult{}, err
		}
		a := accs["MCSCEC (this paper)"]
		a.cost += opt.Cost / float64(n)
		a.rows = m + opt.R
		a.devs = opt.I

		woS, err := alloc.TAWithoutSecurity(in)
		if err != nil {
			return ComparisonResult{}, err
		}
		a = accs["TAw/oS (no security)"]
		a.cost += woS.Cost / float64(n)
		a.rows = m
		a.devs = woS.I

		// Polynomial masking: every one of its n devices stores and
		// multiplies all m rows; price it on the cheapest devices.
		for _, pm := range []struct {
			key string
			n   int
		}{
			{"PolyMask t=1, n=2 (tight)", 2},
			{"PolyMask t=1, n=4 (2 spares)", 4},
		} {
			total := 0.0
			for j := 0; j < pm.n; j++ {
				total += float64(m) * sorted[j]
			}
			a = accs[pm.key]
			a.cost += total / float64(n)
			a.rows = m * pm.n
			a.devs = pm.n
		}
	}

	for _, key := range order {
		a := accs[key]
		res.Rows = append(res.Rows, ComparisonRow{
			Scheme: key, TotalRows: a.rows, Devices: a.devs,
			MeanCost: a.cost, Stragglers: a.strag, Collusion: a.coll,
		})
	}
	return res, nil
}

// WriteComparisonMarkdown renders the related-work table.
func WriteComparisonMarkdown(w io.Writer, res ComparisonResult) error {
	if _, err := fmt.Fprintf(w, "### comparison — MCSCEC vs related-work schemes (m=%d, k=%d, %d fleets)\n\n",
		res.M, res.K, res.Instances); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| scheme | total rows | devices | mean cost | vs MCSCEC | stragglers tolerated | collusion tolerated |\n|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	base := res.Rows[0].MeanCost
	for _, r := range res.Rows {
		if _, err := fmt.Fprintf(w, "| %s | %d | %d | %.0f | %+.0f%% | %d | %d |\n",
			r.Scheme, r.TotalRows, r.Devices, r.MeanCost, 100*(r.MeanCost-base)/base, r.Stragglers, r.Collusion); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
