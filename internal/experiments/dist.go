package experiments

import (
	"fmt"
	"io"

	"github.com/scec/scec/internal/workload"
)

// DistPoint is one cost distribution's mean series values.
type DistPoint struct {
	// Dist names the distribution.
	Dist string
	// Mean maps series name to mean cost.
	Mean map[string]float64
}

// DistResult is the distribution-robustness study.
type DistResult struct {
	M, K   int
	Points []DistPoint
}

const saltDist = 0xd157

// DistSweep extends the paper's evaluation beyond its two cost
// distributions: the same six series are averaged under uniform, normal,
// shifted-exponential, and heavy-tailed Pareto device costs. The structural
// relations (LB ≤ MCSCEC ≤ secure baselines) are distribution-free — this
// study shows *how much* the optimization wins as fleets get heavier-tailed
// (the Pareto regime is where MinNode-style concentration shines and
// MaxNode collapses).
func DistSweep(cfg Config) (DistResult, error) {
	d := cfg.Defaults
	m := 1000
	res := DistResult{M: m, K: d.K}
	dists := []workload.CostDist{
		workload.Uniform{Max: d.CMax},
		workload.Normal{Mu: d.Mu, Sigma: d.Sigma},
		workload.Exponential{Mean: 2},
		workload.Pareto{Alpha: 1.5},
	}
	n := d.Instances
	if n < 1 {
		return DistResult{}, fmt.Errorf("experiments: %d instances per point", n)
	}
	for idx, dist := range dists {
		mean, err := evalPoint(cfg, saltDist, idx, m, d.K, dist)
		if err != nil {
			return DistResult{}, fmt.Errorf("dist %s: %w", dist.Name(), err)
		}
		res.Points = append(res.Points, DistPoint{Dist: dist.Name(), Mean: mean})
	}
	return res, nil
}

// WriteDistMarkdown renders the distribution study.
func WriteDistMarkdown(w io.Writer, res DistResult) error {
	if _, err := fmt.Fprintf(w, "### dist — cost under different fleet cost distributions (m=%d, k=%d)\n\n", res.M, res.K); err != nil {
		return err
	}
	header := "| distribution"
	sep := "|---"
	for _, s := range AllSeries {
		header += " | " + s
		sep += "|---"
	}
	if _, err := fmt.Fprintf(w, "%s |\n%s|\n", header, sep); err != nil {
		return err
	}
	for _, p := range res.Points {
		row := "| " + p.Dist
		for _, s := range AllSeries {
			row += fmt.Sprintf(" | %.1f", p.Mean[s])
		}
		if _, err := fmt.Fprintf(w, "%s |\n", row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
