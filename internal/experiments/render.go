package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV renders a figure as CSV: a header with the sweep parameter and
// every series, then one row per point.
func WriteCSV(w io.Writer, r Result) error {
	cols := append([]string{r.XLabel}, AllSeries...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, p := range r.Points {
		row := make([]string, 0, len(cols))
		row = append(row, strconv.FormatFloat(p.X, 'g', -1, 64))
		for _, s := range AllSeries {
			row = append(row, strconv.FormatFloat(p.Mean[s], 'f', 2, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders a figure as a GitHub-flavoured markdown table with a
// caption.
func WriteMarkdown(w io.Writer, r Result) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	header := append([]string{r.XLabel}, AllSeries...)
	if _, err := fmt.Fprintf(w, "| %s |\n|%s\n", strings.Join(header, " | "), strings.Repeat("---|", len(header))); err != nil {
		return err
	}
	for _, p := range r.Points {
		cells := make([]string, 0, len(header))
		cells = append(cells, strconv.FormatFloat(p.X, 'g', -1, 64))
		for _, s := range AllSeries {
			cells = append(cells, strconv.FormatFloat(p.Mean[s], 'f', 1, 64))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteClaims renders the headline-claim report as a markdown table.
func WriteClaims(w io.Writer, rep ClaimReport) error {
	if _, err := fmt.Fprintf(w, "### Headline claims (paper §I/§V vs this run)\n\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| claim | paper bound | measured | holds |\n|---|---|---|---|"); err != nil {
		return err
	}
	for _, c := range rep.Claims {
		status := "yes"
		if !c.Holds {
			status = "NO"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s %.1f%% | %.2f%% | %s |\n",
			c.Statement, c.Direction, 100*c.PaperValue, 100*c.Measured, status); err != nil {
			return err
		}
	}
	if math.IsNaN(rep.SigmaCrossover) {
		_, err := fmt.Fprintf(w, "\nMaxNode/MinNode crossover in Fig. 2(d): not observed.\n")
		return err
	}
	_, err := fmt.Fprintf(w, "\nMaxNode/MinNode crossover in Fig. 2(d): σ ≈ %.2f.\n", rep.SigmaCrossover)
	return err
}
