package scec

import (
	"math/rand/v2"
	"testing"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(101, 103)) }

func TestDeployEndToEndPrime(t *testing.T) {
	f := PrimeField()
	rng := testRNG()
	a := RandomMatrix(f, rng, 50, 16)
	costs := []float64{1.5, 0.7, 2.2, 1.1, 3.4, 0.9}

	dep, err := Deploy(f, a, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Devices() != dep.Plan.I {
		t.Fatalf("deployment spans %d devices, plan says %d", dep.Devices(), dep.Plan.I)
	}
	x := RandomVector(f, rng, 16)
	got, err := dep.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	want := MulVec(f, a, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %d != %d", i, got[i], want[i])
		}
	}
	for j, leak := range dep.Audit() {
		if leak != 0 {
			t.Fatalf("device %d leaks %d dimensions", j, leak)
		}
	}
	if dep.Cost() <= 0 {
		t.Fatal("plan cost must be positive")
	}
}

func TestDeployRealField(t *testing.T) {
	f := RealField(1e-6)
	rng := testRNG()
	a := RandomMatrix(f, rng, 20, 8)
	costs := []float64{1, 1, 1, 1}
	dep, err := Deploy(f, a, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomVector(f, rng, 8)
	got, err := dep.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	want := MulVec(f, a, x)
	for i := range got {
		if d := got[i] - want[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("entry %d: %g != %g", i, got[i], want[i])
		}
	}
}

func TestDeployErrors(t *testing.T) {
	f := PrimeField()
	rng := testRNG()
	a := RandomMatrix(f, rng, 10, 4)
	if _, err := Deploy(f, a, []float64{1}, rng); err == nil {
		t.Error("single-device fleet should be rejected")
	}
	dep, err := Deploy(f, a, []float64{1, 2, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.MulVec(make([]uint64, 3)); err == nil {
		t.Error("wrong-length input should be rejected")
	}
}

func TestAllocateAgreesWithExhaustive(t *testing.T) {
	costs := []float64{2.5, 1.1, 3.7, 0.4, 1.9}
	p1, err := Allocate(123, costs)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := AllocateExhaustive(123, costs)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cost != p2.Cost {
		t.Fatalf("TA1 cost %g != TA2 cost %g", p1.Cost, p2.Cost)
	}
	lb, err := LowerBound(123, costs)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cost < lb {
		t.Fatalf("optimal cost %g below lower bound %g", p1.Cost, lb)
	}
}

func TestBaselinesExposed(t *testing.T) {
	in := Instance{M: 30, Costs: []float64{1, 2, 3, 4}}
	opt, err := Allocate(in.M, in.Costs)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []func(Instance) (Plan, error){BaselineWithoutSecurity, BaselineMaxNode, BaselineMinNode} {
		p, err := base(in)
		if err != nil {
			t.Fatal(err)
		}
		if p.Algorithm == "" {
			t.Fatal("baseline plan must be labelled")
		}
		if p.Algorithm != "TAw/oS" && p.Cost < opt.Cost-1e-9 {
			t.Fatalf("secure baseline %s beat the optimum", p.Algorithm)
		}
	}
}

func TestSchemeRoundTripViaFacade(t *testing.T) {
	f := GF256Field()
	rng := testRNG()
	s, err := NewScheme(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyScheme(f, s); err != nil {
		t.Fatal(err)
	}
	a := RandomMatrix(f, rng, 12, 6)
	enc, err := Encode(f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomVector(f, rng, 6)
	y := enc.ComputeAll(f, x)
	got, err := Decode(f, s, y)
	if err != nil {
		t.Fatal(err)
	}
	want := MulVec(f, a, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestCollusionSchemeViaFacade(t *testing.T) {
	f := PrimeField()
	s, err := NewCollusionScheme(f, 8, 4, 2, []int{2, 2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitCostHelpers(t *testing.T) {
	c := CostComponents{Storage: 1, Add: 1, Mul: 2, Comm: 3}
	// l = 4: 5*1 + 4*2 + 3*1 + 3 = 19
	if got := UnitCost(4, c); got != 19 {
		t.Fatalf("UnitCost = %g, want 19", got)
	}
	units, err := UnitCosts(4, []CostComponents{c, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 || units[0] != 19 {
		t.Fatalf("UnitCosts = %v", units)
	}
}

func TestDeployMulMat(t *testing.T) {
	f := PrimeField()
	rng := testRNG()
	a := RandomMatrix(f, rng, 30, 12)
	dep, err := Deploy(f, a, []float64{1.2, 0.5, 2.0, 1.4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomMatrix(f, rng, 12, 5)
	got, err := dep.MulMat(x)
	if err != nil {
		t.Fatal(err)
	}
	if !MatrixEqual(f, got, Mul(f, a, x)) {
		t.Fatal("MulMat != A·X")
	}
	if _, err := dep.MulMat(RandomMatrix(f, rng, 7, 5)); err == nil {
		t.Fatal("wrong-shaped input matrix should be rejected")
	}
}

func TestMatrixConstructors(t *testing.T) {
	m := NewMatrix[uint64](2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("NewMatrix wrong shape")
	}
	fr := MatrixFromRows([][]uint64{{1, 2}, {3, 4}})
	if fr.At(1, 0) != 3 {
		t.Fatal("MatrixFromRows wrong content")
	}
}
