package scec_test

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/transport"
)

// collusionFleet provisions FaultProxy-fronted loopback devices for one
// field's fleet-backed collusion deployment, so the test can kill replicas
// mid-session.
type collusionFleet[E comparable] struct {
	t        *testing.T
	f        scec.Field[E]
	replicas int

	mu      sync.Mutex
	proxies [][]*fleet.FaultProxy
}

func (h *collusionFleet[E]) config() scec.FleetExecutorConfig {
	return scec.FleetExecutorConfig{
		Session: scec.FleetConfig{
			QueryTimeout:  10 * time.Second,
			RPCTimeout:    2 * time.Second,
			HedgeAfter:    -1, // deterministic failover, no speculation
			ProbeInterval: -1, // no background probing
			Metrics:       obs.New(),
		},
		Provision: func(blocks int) ([][]string, []string, error) {
			group := make([][]*fleet.FaultProxy, blocks)
			addrs := make([][]string, blocks)
			for j := 0; j < blocks; j++ {
				for k := 0; k < h.replicas; k++ {
					srv, err := transport.NewDeviceServer(h.f, "127.0.0.1:0")
					if err != nil {
						return nil, nil, err
					}
					h.t.Cleanup(func() { _ = srv.Close() })
					p, err := fleet.NewFaultProxy(srv.Addr())
					if err != nil {
						return nil, nil, err
					}
					h.t.Cleanup(func() { _ = p.Close() })
					group[j] = append(group[j], p)
					addrs[j] = append(addrs[j], p.Addr())
				}
			}
			h.mu.Lock()
			h.proxies = group
			h.mu.Unlock()
			return addrs, nil, nil
		},
	}
}

// failFirstReplicas drops the first replica of every coded block.
func (h *collusionFleet[E]) failFirstReplicas() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, replicas := range h.proxies {
		replicas[0].SetMode(fleet.FaultDrop)
	}
}

// collusionBackendsAgree is the differential harness behind the tentpole's
// pin: the same t = 2 deployment inputs must answer identically — and match
// the plaintext product — over the local kernels, the virtual-clock
// simulator, and the replicated TCP fleet, including after the first replica
// of every block is killed mid-session. tier builds the deployment options
// selecting the collusion code (WithCollusion for the solved tiers, WithCode
// for a hand-built layout) and wantAlg names the expected plan algorithm.
func collusionBackendsAgree[E comparable](t *testing.T, f scec.Field[E], tier func() []scec.DeployOption[E], wantAlg string) {
	const m, l, tc = 18, 6, 2
	costs := []float64{1.4, 0.8, 2.1, 1.0, 3.2, 0.9, 1.7, 2.6, 1.2, 1.9, 2.3, 0.95, 3.0, 1.6, 2.8, 1.05, 2.2, 1.8, 0.85, 2.9, 1.35}
	newRng := func() *rand.Rand { return rand.New(rand.NewPCG(41, 97)) }
	a := scec.RandomMatrix(f, rand.New(rand.NewPCG(3, 5)), m, l)
	x := scec.RandomVector(f, rand.New(rand.NewPCG(7, 9)), l)
	want := scec.MulVec(f, a, x)

	harness := &collusionFleet[E]{t: t, f: f, replicas: 2}
	backends := []struct {
		name    string
		backend scec.ExecutorBackend[E]
	}{
		{"local", scec.LocalExecutor[E]()},
		{"sim", scec.SimExecutor[E](scec.SimExecutorConfig{Metrics: obs.New()})},
		{"fleet", scec.FleetExecutor[E](harness.config())},
	}
	var reference []E
	for _, tb := range backends {
		t.Run(tb.name, func(t *testing.T) {
			// Same seed stream per backend: identical plan, Cauchy coding,
			// and random rows, so answers must be bit-identical.
			opts := append(tier(), scec.WithExecutor(tb.backend))
			dep, err := scec.Deploy(f, a, costs, newRng(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = dep.Close() })
			if dep.Code.T() != tc || dep.Code.Name() != "collusion" {
				t.Fatalf("deployed code %q with t = %d, want collusion t = %d", dep.Code.Name(), dep.Code.T(), tc)
			}
			if dep.Plan.Algorithm != wantAlg {
				t.Fatalf("plan algorithm %q, want %q", dep.Plan.Algorithm, wantAlg)
			}
			if dep.Scheme != nil {
				t.Fatal("collusion deployments must not expose an Eq. (8) scheme")
			}
			for j, leak := range dep.Audit() {
				if leak != 0 {
					t.Fatalf("device %d leaks %d dimensions", j, leak)
				}
			}
			got, err := dep.MulVec(x)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if !f.Equal(got[i], want[i]) {
					t.Fatalf("entry %d: decoded %v, plaintext %v", i, got[i], want[i])
				}
			}
			if reference == nil {
				reference = got
			} else {
				for i := range got {
					if got[i] != reference[i] {
						t.Fatalf("entry %d: backend %s decoded %v, local decoded %v", i, tb.name, got[i], reference[i])
					}
				}
			}
			if tb.name == "fleet" {
				// Kill the first replica of every block; failover must keep
				// the collusion decode exact.
				harness.failFirstReplicas()
				again, err := dep.MulVec(x)
				if err != nil {
					t.Fatal(err)
				}
				for i := range again {
					if again[i] != reference[i] {
						t.Fatalf("entry %d changed after replica loss: %v vs %v", i, again[i], reference[i])
					}
				}
			}
		})
	}
}

// solvedTier deploys through the TACollusion allocator at t = 2.
func solvedTier[E comparable]() []scec.DeployOption[E] {
	return []scec.DeployOption[E]{scec.WithCollusion[E](2)}
}

// TestCollusionBackendsAgreePrime runs the differential over F_{2^61-1}.
func TestCollusionBackendsAgreePrime(t *testing.T) {
	collusionBackendsAgree(t, scec.PrimeField(), solvedTier[uint64], "TAt")
}

// TestCollusionBackendsAgreeGF256 runs the differential over GF(2^8).
func TestCollusionBackendsAgreeGF256(t *testing.T) {
	collusionBackendsAgree(t, scec.GF256Field(), solvedTier[byte], "TAt")
}

// TestCollusionBackendsAgreeReal runs the differential over float64 through
// the WithCode tier: the Cauchy coefficient matrix is ill-conditioned in
// floating point for wide per-device layouts (see DESIGN.md §13), so the
// real-field deployment hand-picks the w = 1 layout (r = 2, one row per
// device), which decodes to ~1e-13. The backends share every kernel path, so
// even floating point stays bit-identical across them.
func TestCollusionBackendsAgreeReal(t *testing.T) {
	f := scec.RealField(1e-6)
	collusionBackendsAgree(t, f, func() []scec.DeployOption[float64] {
		rows, r, err := scec.CollusionRows(18, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		code, err := scec.NewCollusionScheme(f, 18, r, 2, rows)
		if err != nil {
			t.Fatal(err)
		}
		return []scec.DeployOption[float64]{scec.WithCode[float64](code)}
	}, "custom")
}

// TestServeCollusionSurvivesReplicaLoss runs the public fault-tolerant Serve
// façade over a t = 2 deployment: two replicas per coded block, one replica
// of every block shut down mid-session, and the decoded A·x must stay exact.
func TestServeCollusionSurvivesReplicaLoss(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(19, 23))
	a := scec.RandomMatrix(f, rng, 30, 8)
	costs := []float64{1.1, 2.5, 0.9, 1.8, 1.3, 2.0, 0.7}
	dep, err := scec.Deploy(f, a, costs, rng, scec.WithCollusion[uint64](2))
	if err != nil {
		t.Fatal(err)
	}

	cfg := scec.FleetConfig{
		Replicas:      make([][]string, dep.Devices()),
		ProbeInterval: -1,
	}
	victims := make([]*transport.DeviceServer[uint64], dep.Devices())
	for j := range cfg.Replicas {
		for k := 0; k < 2; k++ {
			srv, err := transport.NewDeviceServer[uint64](f, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = srv.Close() })
			if k == 0 {
				victims[j] = srv
			}
			cfg.Replicas[j] = append(cfg.Replicas[j], srv.Addr())
		}
	}
	s, err := scec.Serve(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	x := scec.RandomVector(f, rng, 8)
	want := scec.MulVec(f, a, x)
	check := func() {
		t.Helper()
		got, err := s.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatal("fleet session decoded the wrong collusion result")
			}
		}
	}
	check()
	for _, srv := range victims {
		_ = srv.Close()
	}
	check()
}
