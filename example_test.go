package scec_test

import (
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec"
)

// ExampleDeploy provisions a secure multiplication service and runs one
// query through it.
func ExampleDeploy() {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(1, 2))

	a := scec.MatrixFromRows([][]uint64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
		{10, 11, 12},
	})
	costs := []float64{1.0, 2.0, 1.5, 3.0}

	dep, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	y, err := dep.MulVec([]uint64{1, 0, 1})
	if err != nil {
		fmt.Println("mulvec:", err)
		return
	}
	fmt.Println(y)
	fmt.Println("leakage:", dep.Audit())
	// Output:
	// [4 10 16 22]
	// leakage: [0 0 0]
}

// ExampleAllocate solves a task allocation and compares it with the lower
// bound.
func ExampleAllocate() {
	costs := []float64{1, 1, 1, 1, 1}
	plan, err := scec.Allocate(4, costs)
	if err != nil {
		fmt.Println("allocate:", err)
		return
	}
	lb, err := scec.LowerBound(4, costs)
	if err != nil {
		fmt.Println("bound:", err)
		return
	}
	fmt.Printf("r=%d devices=%d cost=%.0f lb=%.0f\n", plan.R, plan.I, plan.Cost, lb)
	// Output:
	// r=1 devices=5 cost=5 lb=5
}

// ExampleNewScheme shows the coding layer without the allocation layer.
func ExampleNewScheme() {
	f := scec.GF256Field()
	rng := rand.New(rand.NewPCG(3, 4))

	s, err := scec.NewScheme(4, 2)
	if err != nil {
		fmt.Println("scheme:", err)
		return
	}
	if err := scec.VerifyScheme(f, s); err != nil {
		fmt.Println("verify:", err)
		return
	}
	a := scec.RandomMatrix(f, rng, 4, 3)
	enc, err := scec.Encode(f, s, a, rng)
	if err != nil {
		fmt.Println("encode:", err)
		return
	}
	x := []byte{1, 2, 3}
	y, err := scec.Decode(f, s, enc.ComputeAll(f, x))
	if err != nil {
		fmt.Println("decode:", err)
		return
	}
	want := scec.MulVec(f, a, x)
	fmt.Println("devices:", s.Devices(), "match:", equalBytes(y, want))
	// Output:
	// devices: 3 match: true
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
