package scec_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/sim"
	"github.com/scec/scec/internal/transport"
)

// TestIntegrationDeployOverSimulator runs the public-API deployment through
// the event-level simulator end to end.
func TestIntegrationDeployOverSimulator(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(7, 13))
	a := scec.RandomMatrix(f, rng, 120, 24)
	costs := []float64{2.3, 0.8, 1.4, 3.1, 1.9, 0.6}
	dep, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	profiles := make([]sim.DeviceProfile, dep.Devices())
	for j := range profiles {
		profiles[j] = sim.DefaultProfile()
	}
	x := scec.RandomVector(f, rng, 24)
	got, rep, err := sim.Run(f, dep.Encoding, x, sim.Config{
		Profiles: profiles, UserComputeRate: 1e9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := scec.MulVec(f, a, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("simulator pipeline decoded the wrong result")
		}
	}
	// Total provisioned rows must match the plan exactly.
	if rep.TotalValuesSent != 120+dep.Plan.R {
		t.Fatalf("simulator moved %d values, plan says m+r = %d", rep.TotalValuesSent, 120+dep.Plan.R)
	}
}

// TestIntegrationDeployOverTCP runs the public-API deployment through the
// real TCP runtime end to end.
func TestIntegrationDeployOverTCP(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(11, 17))
	a := scec.RandomMatrix(f, rng, 40, 10)
	costs := []float64{1.1, 2.5, 0.9, 1.8}
	dep, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		t.Fatal(err)
	}

	addrs := make([]string, dep.Devices())
	for j := range addrs {
		srv, err := transport.NewDeviceServer[uint64](f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		addrs[j] = srv.Addr()
	}
	if err := (transport.Cloud[uint64]{}).Distribute(t.Context(), addrs, dep.Encoding); err != nil {
		t.Fatal(err)
	}
	client := transport.Client[uint64]{F: f, Code: dep.Code}
	x := scec.RandomVector(f, rng, 10)
	got, err := client.MulVec(t.Context(), addrs, x)
	if err != nil {
		t.Fatal(err)
	}
	want := scec.MulVec(f, a, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("TCP pipeline decoded the wrong result")
		}
	}
}

// TestIntegrationServeSurvivesReplicaLoss runs the public fault-tolerant
// façade end to end: two replicas per coded block, one replica of every
// block shut down mid-session, and the decoded A·x must stay exact.
func TestIntegrationServeSurvivesReplicaLoss(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(19, 23))
	a := scec.RandomMatrix(f, rng, 40, 10)
	costs := []float64{1.1, 2.5, 0.9, 1.8}
	dep, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		t.Fatal(err)
	}

	cfg := scec.FleetConfig{
		Replicas:      make([][]string, dep.Devices()),
		ProbeInterval: -1, // deterministic: no background probing
	}
	victims := make([]*transport.DeviceServer[uint64], dep.Devices())
	for j := range cfg.Replicas {
		for k := 0; k < 2; k++ {
			srv, err := transport.NewDeviceServer[uint64](f, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = srv.Close() })
			if k == 0 {
				victims[j] = srv
			}
			cfg.Replicas[j] = append(cfg.Replicas[j], srv.Addr())
		}
	}
	s, err := scec.Serve(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	x := scec.RandomVector(f, rng, 10)
	want := scec.MulVec(f, a, x)
	check := func() {
		t.Helper()
		got, err := s.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatal("fleet session decoded the wrong result")
			}
		}
	}
	check()
	for _, srv := range victims {
		_ = srv.Close()
	}
	check() // failover must keep the answer exact
}

// TestQuickDeployAlwaysCorrectAndBlind is a testing/quick property over the
// whole public pipeline: for arbitrary shapes and fleets, Deploy+MulVec
// equals the plaintext product and no device leaks.
func TestQuickDeployAlwaysCorrectAndBlind(t *testing.T) {
	f := scec.PrimeField()
	check := func(mRaw, lRaw uint8, costBytes []byte, seed uint64) bool {
		m := 1 + int(mRaw)%40
		l := 1 + int(lRaw)%16
		if len(costBytes) < 2 {
			costBytes = append(costBytes, 3, 5)
		}
		if len(costBytes) > 8 {
			costBytes = costBytes[:8]
		}
		costs := make([]float64, len(costBytes))
		for j, b := range costBytes {
			costs[j] = 0.25 + float64(b)
		}
		rng := rand.New(rand.NewPCG(seed, 0x1e57))
		a := scec.RandomMatrix(f, rng, m, l)
		dep, err := scec.Deploy(f, a, costs, rng)
		if err != nil {
			return false
		}
		x := scec.RandomVector(f, rng, l)
		got, err := dep.MulVec(x)
		if err != nil {
			return false
		}
		want := scec.MulVec(f, a, x)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		for _, leak := range dep.Audit() {
			if leak != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllocationDominance: for arbitrary fleets, the optimal plan never
// exceeds any baseline and never beats the lower bound.
func TestQuickAllocationDominance(t *testing.T) {
	check := func(mRaw uint16, costBytes []byte) bool {
		m := 1 + int(mRaw)%500
		if len(costBytes) < 2 {
			costBytes = append(costBytes, 2, 9)
		}
		if len(costBytes) > 20 {
			costBytes = costBytes[:20]
		}
		costs := make([]float64, len(costBytes))
		for j, b := range costBytes {
			costs[j] = 1 + float64(b)/16
		}
		opt, err := scec.Allocate(m, costs)
		if err != nil {
			return false
		}
		lb, err := scec.LowerBound(m, costs)
		if err != nil {
			return false
		}
		if opt.Cost < lb-1e-6 {
			return false
		}
		in := scec.Instance{M: m, Costs: costs}
		for _, base := range []func(scec.Instance) (scec.Plan, error){scec.BaselineMaxNode, scec.BaselineMinNode} {
			p, err := base(in)
			if err != nil {
				return false
			}
			if p.Cost < opt.Cost-1e-6 {
				return false
			}
		}
		woS, err := scec.BaselineWithoutSecurity(in)
		if err != nil {
			return false
		}
		return woS.Cost <= opt.Cost+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationMultiFieldConsistency: the same integer matrix deployed
// over all three fields yields consistent results for small integer inputs
// (where float64 is exact and values stay below the field moduli).
func TestIntegrationMultiFieldConsistency(t *testing.T) {
	const m, l = 6, 4
	rows := [][]int64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{2, 4, 6, 8},
		{1, 3, 5, 7},
		{0, 1, 0, 1},
	}
	x64 := []int64{1, 2, 0, 3}
	costs := []float64{1, 2, 3}

	// Prime field.
	fp := scec.PrimeField()
	ap := scec.NewMatrix[uint64](m, l)
	xp := make([]uint64, l)
	for i, r := range rows {
		for j, v := range r {
			ap.Set(i, j, uint64(v))
		}
	}
	for j, v := range x64 {
		xp[j] = uint64(v)
	}
	depP, err := scec.Deploy(fp, ap, costs, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	yp, err := depP.MulVec(xp)
	if err != nil {
		t.Fatal(err)
	}

	// Real field.
	fr := scec.RealField(1e-9)
	ar := scec.NewMatrix[float64](m, l)
	xr := make([]float64, l)
	for i, r := range rows {
		for j, v := range r {
			ar.Set(i, j, float64(v))
		}
	}
	for j, v := range x64 {
		xr[j] = float64(v)
	}
	depR, err := scec.Deploy(fr, ar, costs, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	yr, err := depR.MulVec(xr)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < m; i++ {
		// The float path subtracts the injected randomness back out, so it
		// is exact only up to rounding.
		if d := float64(yp[i]) - yr[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("row %d: prime %d vs real %g", i, yp[i], yr[i])
		}
	}
}
